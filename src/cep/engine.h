#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cep/compiled_query.h"
#include "cep/query.h"
#include "cep/slotted_event.h"
#include "util/ids.h"
#include "util/ring_buffer.h"

namespace erms::snapshot {
class Reader;
class Writer;
}

namespace erms::cep {

struct QueryTag {};
using QueryId = util::StrongId<QueryTag>;

/// Iteration order for group visitation. kSorted visits groups in joined-key
/// order — identical between the scalar and sharded engines, for consumers
/// whose behaviour depends on visit order. kUnordered visits in whatever
/// order the engine stores groups (deterministic for a given event history,
/// but engine-specific), skipping the per-visit sort — the right choice for
/// consumers that scatter counts into dense arrays.
enum class GroupOrder : std::uint8_t { kSorted, kUnordered };

/// Interface shared by the scalar Engine and the ShardedEngine so consumers
/// (the Data Judge's feed, ErmsManager) can be wired to either. Methods are
/// non-const because a sharded implementation must drain pending batches
/// before answering reads.
class EngineBase {
 public:
  /// Called whenever a group's row satisfies HAVING after an update. Rows
  /// are also readable at any time via snapshot().
  using Listener = std::function<void(const ResultRow&)>;

  virtual ~EngineBase() = default;

  /// Register a continuous query; the listener may be null (poll-only).
  virtual QueryId register_query(Query query, Listener listener) = 0;
  QueryId register_query(Query query) { return register_query(std::move(query), nullptr); }

  /// Remove a query and its state. Returns false if unknown.
  virtual bool remove_query(QueryId id) = 0;

  /// Push one event into every matching query (compatibility path: converts
  /// to slotted form first).
  virtual void push(const Event& event) = 0;

  /// Push a slotted event. The event is consumed during the call (or copied
  /// into a pending batch); callers may reuse it immediately.
  virtual void push_slotted(const SlottedEvent& event) = 0;

  /// Push a whole batch of slotted events, equivalent to push_slotted on
  /// each in order. Engines may reorder work internally (e.g. processing the
  /// batch query-major) as long as every query's resulting state matches the
  /// per-event path; only listener firing order may differ within a batch.
  virtual void push_batch(const EventBatch& batch) = 0;

  /// Advance time without an event: evict expired window entries (time
  /// windows only). Judges call this before reading snapshots.
  virtual void advance_to(sim::SimTime now) = 0;

  /// Current result rows of a query (one per group), in group-key order.
  [[nodiscard]] virtual std::vector<ResultRow> snapshot(QueryId id) = 0;

  /// A single group's row, if that group currently exists. `key` holds the
  /// group-by attribute values rendered as strings, in group-by order.
  [[nodiscard]] virtual std::optional<ResultRow> group_row(
      QueryId id, const std::vector<std::string>& key) = 0;

  /// Visit every group of `id` as (group-by values, window event count).
  /// Unlike snapshot(), this renders no rows and allocates no ClassAds.
  using GroupCountVisitor =
      std::function<void(const std::vector<std::string>& key_values, std::uint64_t count)>;
  virtual void for_each_group_count(QueryId id, const GroupCountVisitor& fn,
                                    GroupOrder order) = 0;
  void for_each_group_count(QueryId id, const GroupCountVisitor& fn) {
    for_each_group_count(id, fn, GroupOrder::kSorted);
  }

  [[nodiscard]] virtual std::size_t query_count() const = 0;
  [[nodiscard]] virtual std::uint64_t events_processed() const = 0;

  /// The engine's attribute / stream interners. Producers resolve their
  /// attribute slots once (e.g. audit::AuditSlots) and then fill slotted
  /// events with no string handling at all.
  [[nodiscard]] virtual SymbolTable& attr_symbols() = 0;
  [[nodiscard]] virtual SymbolTable& stream_symbols() = 0;

  /// Snapshot support (src/snapshot/): serialise / restore all window and
  /// group state. load_state expects an engine with the identical query set
  /// already registered (the feed re-registers its standing queries at
  /// construction) and fails the Reader with kStateMismatch otherwise.
  /// Aggregate running sums are stored as raw double bit patterns, so a
  /// restored engine renders byte-identical rows.
  virtual void save_state(snapshot::Writer& w) = 0;
  virtual void load_state(snapshot::Reader& r) = 0;
};

/// The CEP engine: continuous queries over pushed event streams with sliding
/// windows, group-by aggregation and HAVING-triggered listeners. ERMS feeds
/// it parsed HDFS audit-log events and reads back per-file / per-block /
/// per-datanode access counts (paper §III.C).
///
/// Internally each query runs a compiled plan over slotted events. Group
/// state lives in a slot pool behind an open-addressing bucket table (4-byte
/// buckets, linear probing on the 64-bit key hash, tombstones on erase):
/// window entries carry their group's pool slot, so eviction touches the
/// group directly with no hash lookup, and erased slots go on a freelist
/// whose strings and vectors are reused by the next group — high-churn
/// workloads (a uniform stream over millions of files) stop allocating once
/// the pool reaches the window's working-set size. Windows hold only the
/// per-entry aggregate inputs in flat ring buffers (not event copies), and
/// min/max use monotonic deques instead of multisets.
class Engine final : public EngineBase {
 public:
  Engine();
  /// Construct with shared symbol tables (ShardedEngine gives every shard
  /// the same tables so slots agree across shards).
  Engine(std::shared_ptr<SymbolTable> attrs, std::shared_ptr<SymbolTable> streams);

  using EngineBase::register_query;
  using EngineBase::for_each_group_count;
  QueryId register_query(Query query, Listener listener) override;
  bool remove_query(QueryId id) override;
  void push(const Event& event) override;
  void push_slotted(const SlottedEvent& event) override;
  void push_batch(const EventBatch& batch) override;
  void advance_to(sim::SimTime now) override;
  [[nodiscard]] std::vector<ResultRow> snapshot(QueryId id) override;
  [[nodiscard]] std::optional<ResultRow> group_row(
      QueryId id, const std::vector<std::string>& key) override;
  void for_each_group_count(QueryId id, const GroupCountVisitor& fn,
                            GroupOrder order) override;
  [[nodiscard]] std::size_t query_count() const override { return queries_.size(); }
  [[nodiscard]] std::uint64_t events_processed() const override { return events_processed_; }
  [[nodiscard]] SymbolTable& attr_symbols() override { return *attrs_; }
  [[nodiscard]] SymbolTable& stream_symbols() override { return *streams_; }
  void save_state(snapshot::Writer& w) override;
  void load_state(snapshot::Reader& r) override;

  /// Force WHERE evaluation through the ClassAd adapter even when a fast
  /// plan exists — the differential tests prove both paths byte-identical.
  void set_use_fast_path(bool on) { use_fast_path_ = on; }
  [[nodiscard]] bool use_fast_path() const { return use_fast_path_; }

  /// Raw (pre-rendering) aggregate state, exported so ShardedEngine can
  /// merge groups that span shards before rendering rows.
  struct RawAggregate {
    double sum{0.0};
    std::uint64_t non_null{0};
    double extreme{0.0};  // current min or max, valid when has_extreme
    bool has_extreme{false};
  };
  struct RawGroup {
    std::string key;  // group-by values joined with '\x1f'
    std::vector<std::string> key_values;
    std::uint64_t count{0};
    std::vector<RawAggregate> aggs;  // parallel to Query::select
  };

  /// All groups of a query in key order (empty if unknown query).
  [[nodiscard]] std::vector<RawGroup> raw_snapshot(QueryId id) const;
  /// One group by joined key, if present.
  [[nodiscard]] std::optional<RawGroup> raw_group(QueryId id, const std::string& key) const;
  /// The registered query, or nullptr.
  [[nodiscard]] const Query* query(QueryId id) const;

  /// Render a merged raw group the same way snapshot() renders rows.
  [[nodiscard]] static ResultRow render_row(const Query& q, const RawGroup& g);

  static std::string join_key(const std::vector<std::string>& parts);

 private:
  /// One min/max candidate in a group's monotonic deque.
  struct MonoEntry {
    double value;
    std::uint64_t seq;
  };
  /// A group's aggregate state, held in the query's slot pool. A slot is
  /// live iff count > 0 (groups are created together with their first window
  /// entry and erased when the last one evicts); freed slots keep their
  /// string/vector capacity for the next group that reuses them.
  struct GroupState {
    std::uint64_t hash{0};      // FNV of key, cached for rehash
    std::uint32_t bucket{0};    // index of the bucket pointing at this slot
    std::string key;
    std::vector<std::string> key_values;
    std::uint64_t count{0};
    std::uint64_t next_seq{0};
    // Indexed by the plan's numeric-aggregate index (count(*) excluded).
    std::vector<double> sums;
    std::vector<std::uint64_t> non_null;
    std::vector<std::deque<MonoEntry>> mono;  // used only by min/max aggregates
  };
  /// One window entry: everything eviction needs, instead of an event copy.
  struct WindowEntry {
    std::int64_t time_us;
    std::uint32_t slot;  // the entry's group in the query's slot pool
    std::uint64_t seq;   // the group-local sequence number of this entry
  };
  static constexpr std::uint32_t kEmptyBucket = 0xFFFFFFFFu;
  static constexpr std::uint32_t kTombBucket = 0xFFFFFFFEu;
  struct QueryState {
    QueryId id;
    Query query;
    CompiledQuery plan;
    Listener listener;
    util::RingBuffer<WindowEntry> ring;
    util::RingBuffer<double> ring_values;  // plan.numeric_aggs doubles per entry
    // Open-addressing group table: buckets hold pool-slot indices (or the
    // empty/tombstone sentinels); the pool owns the GroupStates.
    std::vector<std::uint32_t> buckets;  // capacity always a power of two
    std::vector<GroupState> slots;
    std::vector<std::uint32_t> free_slots;
    std::size_t live_groups{0};
    std::size_t bucket_used{0};  // live + tombstones
  };

  [[nodiscard]] QueryState* find_query(QueryId id);
  [[nodiscard]] const QueryState* find_query(QueryId id) const;

  [[nodiscard]] bool event_matches(QueryState& qs, const SlottedEvent& e);
  /// Render the joined group key into `out` (a reused scratch buffer).
  static void build_group_key(const CompiledQuery& plan, const SlottedEvent& e,
                              std::string& out);
  /// Pool slot of `key`, creating the group when `create`; kEmptyBucket on
  /// miss (create=false). Grows/rehashes the bucket table as needed.
  std::uint32_t resolve_group(QueryState& qs, const std::string& key, bool create);
  /// Same, with the key's FNV hash already computed by the caller.
  std::uint32_t resolve_group(QueryState& qs, const std::string& key,
                              std::uint64_t hash, bool create);
  /// Pool slot of `key` without mutating (kEmptyBucket on miss).
  [[nodiscard]] std::uint32_t find_slot(const QueryState& qs, const std::string& key) const;
  void rehash(QueryState& qs, std::size_t min_buckets);
  /// Tombstone `slot`'s bucket and return the GroupState to the freelist.
  void erase_group(QueryState& qs, std::uint32_t slot);
  void insert_event(QueryState& qs, const SlottedEvent& e, std::uint32_t slot);
  void evict_front(QueryState& qs);
  void evict_time(QueryState& qs, sim::SimTime now);
  void push_one(QueryState& qs, const SlottedEvent& event);
  /// Run a whole batch through one query with a bounded software pipeline:
  /// the pure per-event work (match test, key render, hash) runs ahead and
  /// prefetches the bucket and group-state cache lines, while every mutation
  /// is applied in event order — byte-identical state to push_one per event.
  void push_batch_query(QueryState& qs, const EventBatch& batch);
  void notify(QueryState& qs, std::uint32_t slot);
  [[nodiscard]] RawGroup export_group(const QueryState& qs, const GroupState& g) const;

  std::shared_ptr<SymbolTable> attrs_;
  std::shared_ptr<SymbolTable> streams_;
  std::vector<QueryState> queries_;
  util::IdGenerator<QueryId> ids_{1};
  std::uint64_t events_processed_{0};
  bool use_fast_path_{true};
  /// In-flight pipeline state for push_batch_query: one slot per event still
  /// between the fetch stage and retirement. Strings keep their capacity
  /// across batches, so a warm pipeline renders keys with no allocation.
  static constexpr std::size_t kPipeDepth = 8;  // power of two
  struct PipeSlot {
    std::string key;
    std::uint64_t hash{0};
    bool matched{false};
  };

  std::string group_key_buf_;     // scratch for build_group_key
  SlottedEvent convert_scratch_;  // scratch for push(const Event&)
  std::vector<const GroupState*> visit_scratch_;  // sorted visitation scratch
  std::array<PipeSlot, kPipeDepth> pipe_;         // push_batch_query scratch
};

}  // namespace erms::cep
