#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "cep/query.h"
#include "util/ids.h"

namespace erms::cep {

struct QueryTag {};
using QueryId = util::StrongId<QueryTag>;

/// The CEP engine: continuous queries over pushed event streams with sliding
/// windows, group-by aggregation and HAVING-triggered listeners. ERMS feeds
/// it parsed HDFS audit-log events and reads back per-file / per-block /
/// per-datanode access counts (paper §III.C).
class Engine {
 public:
  /// Called whenever a group's row satisfies HAVING after an update. Rows
  /// are also readable at any time via snapshot().
  using Listener = std::function<void(const ResultRow&)>;

  /// Register a continuous query; the listener may be null (poll-only).
  QueryId register_query(Query query, Listener listener = nullptr);

  /// Remove a query and its state. Returns false if unknown.
  bool remove_query(QueryId id);

  /// Push one event into every matching query.
  void push(const Event& event);

  /// Advance time without an event: evict expired window entries (time
  /// windows only). Judges call this before reading snapshots.
  void advance_to(sim::SimTime now);

  /// Current result rows of a query (one per group), in group-key order.
  [[nodiscard]] std::vector<ResultRow> snapshot(QueryId id) const;

  /// A single group's row, if that group currently exists. `key` holds the
  /// group-by attribute values rendered as strings, in group-by order.
  [[nodiscard]] std::optional<ResultRow> group_row(QueryId id,
                                                   const std::vector<std::string>& key) const;

  [[nodiscard]] std::size_t query_count() const { return queries_.size(); }
  [[nodiscard]] std::uint64_t events_processed() const { return events_processed_; }

 private:
  struct GroupState {
    std::vector<std::string> key_values;
    std::uint64_t count{0};
    // Parallel to Query::select: accumulators for sum/avg, plus value
    // multisets for min/max (needed because windows evict).
    std::vector<double> sums;
    std::vector<std::uint64_t> non_null;
    std::vector<std::multiset<double>> ordered;
  };
  struct QueryState {
    Query query;
    Listener listener;
    SlidingWindow window;
    std::map<std::string, GroupState> groups;  // key = joined key values
  };

  static std::string join_key(const std::vector<std::string>& parts);
  [[nodiscard]] static std::vector<std::string> group_key_of(const Query& q, const Event& e);
  /// Render the joined group key of `e` into the reused scratch buffer and
  /// return it — the hot path equivalent of join_key(group_key_of(...))
  /// without the per-event vector<string>. Invalidated by the next call.
  const std::string& build_group_key(const Query& q, const Event& e);
  void accumulate(QueryState& qs, const Event& e, int direction);
  [[nodiscard]] static ResultRow make_row(const QueryState& qs, const GroupState& g);
  void notify(QueryState& qs, const std::string& key);

  [[nodiscard]] bool event_matches(const Query& q, const Event& e) const;

  std::map<QueryId, QueryState> queries_;
  util::IdGenerator<QueryId> ids_{1};
  std::uint64_t events_processed_{0};
  std::string group_key_buf_;  // scratch for build_group_key
};

}  // namespace erms::cep
