#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cep/query.h"
#include "cep/slotted_event.h"
#include "classad/classad.h"

namespace erms::cep {

/// One `attr OP literal` predicate resolved to a slot. Evaluation follows
/// ClassAd three-valued semantics collapsed to "strictly true": a missing
/// attribute (UNDEFINED) or a type mismatch (ERROR) both fail the predicate,
/// exactly as the engine's old `is_bool() && as_bool()` filter did.
struct FastPred {
  Slot slot{kNoSlot};
  classad::BinaryOp op{classad::BinaryOp::kEq};
  /// When true this is a bare `WHERE attr` truthiness test, not a compare.
  bool truthy{false};
  SlotValue::Kind kind{SlotValue::Kind::kNull};  // literal's kind
  bool bval{false};
  double nval{0.0};         // int literals promoted (ClassAd compares as double)
  std::string sval_lower;   // string literal, pre-folded for ClassAd's
                            // case-insensitive string compare
};

/// Strictly-true evaluation of one fast predicate against a slotted event.
[[nodiscard]] bool eval_fast_pred(const FastPred& p, const SlottedEvent& e);

/// A query's execution plan, resolved against the engine's symbol tables at
/// register_query time: stream and attribute names become slots, and WHERE
/// predicates of the common `attr == const [&& ...]` shape become FastPreds
/// evaluated without a ClassAd. Everything else falls back to building a
/// ClassAd per event and running the original expression machinery.
struct CompiledQuery {
  Slot stream{kNoSlot};          // kNoSlot = FROM clause empty (any stream)
  enum class WhereMode : std::uint8_t { kNone, kFast, kClassAd };
  WhereMode where{WhereMode::kNone};
  std::vector<FastPred> preds;   // conjunction; all must be strictly true

  std::vector<Slot> group_slots;                 // parallel to query.group_by
  std::vector<Slot> agg_slots;                   // parallel to query.select
  std::vector<std::int32_t> agg_numeric_index;   // -1 for count(*)
  std::vector<bool> agg_is_minmax;               // parallel to query.select
  std::size_t numeric_aggs{0};

  static CompiledQuery compile(const Query& q, SymbolTable& attrs, SymbolTable& streams);
};

/// Rebuild a ClassAd view of a slotted event (the compatibility adapter for
/// WHERE expressions the fast path cannot evaluate).
void to_classad(const SlottedEvent& e, const SymbolTable& attrs, classad::ClassAd& out);

}  // namespace erms::cep
