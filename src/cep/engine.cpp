#include "cep/engine.h"

#include <cassert>

namespace erms::cep {

namespace {

/// Attribute value rendered for group keys: strings unquoted, numbers in
/// their natural form, missing attributes as the empty string.
std::string render_key(const classad::Value& v) {
  if (v.is_string()) {
    return v.as_string();
  }
  if (v.is_undefined()) {
    return "";
  }
  return v.to_string();
}

/// Same rendering, appended in place — the hot path avoids a temporary
/// string per attribute for the common string-valued case.
void append_key(std::string& out, const classad::Value& v) {
  if (v.is_string()) {
    out += v.as_string();
  } else if (!v.is_undefined()) {
    out += v.to_string();
  }
}

/// Numeric view of an attribute for sum/avg/min/max; nullopt if non-numeric.
std::optional<double> numeric(const classad::ClassAd& attrs, const std::string& name) {
  const classad::Value v = attrs.evaluate(name);
  if (v.is_number()) {
    return v.as_number();
  }
  return std::nullopt;
}

}  // namespace

QueryId Engine::register_query(Query query, Listener listener) {
  const QueryId id = ids_.next();
  SlidingWindow window{query.window};
  QueryState qs{std::move(query), std::move(listener), std::move(window), {}};
  queries_.emplace(id, std::move(qs));
  return id;
}

bool Engine::remove_query(QueryId id) { return queries_.erase(id) > 0; }

std::string Engine::join_key(const std::vector<std::string>& parts) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out += '\x1f';
    }
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Engine::group_key_of(const Query& q, const Event& e) {
  std::vector<std::string> key;
  key.reserve(q.group_by.size());
  for (const std::string& attr : q.group_by) {
    key.push_back(render_key(e.attrs.evaluate(attr)));
  }
  return key;
}

bool Engine::event_matches(const Query& q, const Event& e) const {
  if (!q.from.empty() && q.from != e.type) {
    return false;
  }
  if (q.where) {
    const classad::Value v = e.attrs.evaluate_expr(*q.where);
    return v.is_bool() && v.as_bool();
  }
  return true;
}

const std::string& Engine::build_group_key(const Query& q, const Event& e) {
  group_key_buf_.clear();
  group_key_buf_.reserve(16 * q.group_by.size());
  for (std::size_t i = 0; i < q.group_by.size(); ++i) {
    if (i != 0) {
      group_key_buf_ += '\x1f';
    }
    append_key(group_key_buf_, e.attrs.evaluate(q.group_by[i]));
  }
  return group_key_buf_;
}

void Engine::accumulate(QueryState& qs, const Event& e, int direction) {
  const std::string& key = build_group_key(qs.query, e);
  auto it = qs.groups.find(key);
  if (it == qs.groups.end()) {
    if (direction < 0) {
      assert(false && "evicting from a missing group");
      return;
    }
    GroupState g;
    // Cold path (first event of a group): materialize the key parts the
    // result rows need.
    g.key_values = group_key_of(qs.query, e);
    g.sums.assign(qs.query.select.size(), 0.0);
    g.non_null.assign(qs.query.select.size(), 0);
    g.ordered.resize(qs.query.select.size());
    it = qs.groups.emplace(key, std::move(g)).first;
  }
  GroupState& g = it->second;
  g.count += static_cast<std::uint64_t>(static_cast<std::int64_t>(direction));

  for (std::size_t i = 0; i < qs.query.select.size(); ++i) {
    const Aggregate& agg = qs.query.select[i];
    if (agg.kind == Aggregate::Kind::kCount) {
      continue;  // uses g.count
    }
    const std::optional<double> v = numeric(e.attrs, agg.attr);
    if (!v) {
      continue;
    }
    if (direction > 0) {
      g.sums[i] += *v;
      ++g.non_null[i];
      if (agg.kind == Aggregate::Kind::kMin || agg.kind == Aggregate::Kind::kMax) {
        g.ordered[i].insert(*v);
      }
    } else {
      g.sums[i] -= *v;
      --g.non_null[i];
      if (agg.kind == Aggregate::Kind::kMin || agg.kind == Aggregate::Kind::kMax) {
        const auto pos = g.ordered[i].find(*v);
        if (pos != g.ordered[i].end()) {
          g.ordered[i].erase(pos);
        }
      }
    }
  }

  if (g.count == 0) {
    qs.groups.erase(it);
  }
}

ResultRow Engine::make_row(const QueryState& qs, const GroupState& g) {
  ResultRow row;
  for (std::size_t i = 0; i < qs.query.group_by.size(); ++i) {
    row.values.insert_string(qs.query.group_by[i], g.key_values[i]);
  }
  for (std::size_t i = 0; i < qs.query.select.size(); ++i) {
    const Aggregate& agg = qs.query.select[i];
    switch (agg.kind) {
      case Aggregate::Kind::kCount:
        row.values.insert_int(agg.alias, static_cast<std::int64_t>(g.count));
        break;
      case Aggregate::Kind::kSum:
        row.values.insert_real(agg.alias, g.sums[i]);
        break;
      case Aggregate::Kind::kAvg:
        if (g.non_null[i] > 0) {
          row.values.insert_real(agg.alias, g.sums[i] / static_cast<double>(g.non_null[i]));
        }
        break;
      case Aggregate::Kind::kMin:
        if (!g.ordered[i].empty()) {
          row.values.insert_real(agg.alias, *g.ordered[i].begin());
        }
        break;
      case Aggregate::Kind::kMax:
        if (!g.ordered[i].empty()) {
          row.values.insert_real(agg.alias, *g.ordered[i].rbegin());
        }
        break;
    }
  }
  return row;
}

void Engine::notify(QueryState& qs, const std::string& key) {
  if (!qs.listener) {
    return;
  }
  const auto it = qs.groups.find(key);
  if (it == qs.groups.end()) {
    return;
  }
  const ResultRow row = make_row(qs, it->second);
  if (qs.query.having) {
    const classad::Value v = row.values.evaluate_expr(*qs.query.having);
    if (!v.is_bool() || !v.as_bool()) {
      return;
    }
  }
  qs.listener(row);
}

void Engine::push(const Event& event) {
  ++events_processed_;
  for (auto& [id, qs] : queries_) {
    if (!event_matches(qs.query, event)) {
      // Time still advances for this query's window.
      qs.window.evict_until(event.time,
                            [this, &qs](const Event& old) { accumulate(qs, old, -1); });
      continue;
    }
    accumulate(qs, event, +1);
    // Copy: eviction inside push() reuses the scratch buffer.
    const std::string key = build_group_key(qs.query, event);
    qs.window.push(event, [this, &qs](const Event& old) { accumulate(qs, old, -1); });
    notify(qs, key);
  }
}

void Engine::advance_to(sim::SimTime now) {
  for (auto& [id, qs] : queries_) {
    qs.window.evict_until(now,
                          [this, &qs](const Event& old) { accumulate(qs, old, -1); });
  }
}

std::vector<ResultRow> Engine::snapshot(QueryId id) const {
  std::vector<ResultRow> out;
  const auto it = queries_.find(id);
  if (it == queries_.end()) {
    return out;
  }
  out.reserve(it->second.groups.size());
  for (const auto& [key, group] : it->second.groups) {
    out.push_back(make_row(it->second, group));
  }
  return out;
}

std::optional<ResultRow> Engine::group_row(QueryId id,
                                           const std::vector<std::string>& key) const {
  const auto it = queries_.find(id);
  if (it == queries_.end()) {
    return std::nullopt;
  }
  const auto git = it->second.groups.find(join_key(key));
  if (git == it->second.groups.end()) {
    return std::nullopt;
  }
  return make_row(it->second, git->second);
}

}  // namespace erms::cep
