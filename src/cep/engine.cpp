#include "cep/engine.h"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "cep/event.h"

namespace erms::cep {

namespace {

/// 64-bit FNV-1a over the joined group key.
std::uint64_t hash_key(const std::string& key) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// Append a slot value rendered exactly as the ClassAd path rendered group
/// keys: strings unquoted, ints/reals/bools via Value::to_string, missing
/// attributes as the empty string.
void append_key_value(std::string& out, const SlotValue* v) {
  if (v == nullptr) {
    return;
  }
  switch (v->kind) {
    case SlotValue::Kind::kString:
      out.append(v->s);
      break;
    case SlotValue::Kind::kInt: {
      char buf[24];
      const auto res = std::to_chars(buf, buf + sizeof(buf), v->i);
      out.append(buf, res.ptr);
      break;
    }
    case SlotValue::Kind::kReal: {
      char buf[48];
      const int n = std::snprintf(buf, sizeof(buf), "%g", v->r);
      out.append(buf, static_cast<std::size_t>(n));
      break;
    }
    case SlotValue::Kind::kBool:
      out.append(v->b ? "true" : "false");
      break;
    case SlotValue::Kind::kNull:
      break;
  }
}

/// Recover the per-attribute key values from the joined key (cold path: runs
/// once per group creation).
std::vector<std::string> split_key(const std::string& key, std::size_t parts) {
  std::vector<std::string> out;
  if (parts == 0) {
    return out;
  }
  out.reserve(parts);
  std::size_t start = 0;
  for (std::size_t i = 0; i + 1 < parts; ++i) {
    const std::size_t pos = key.find('\x1f', start);
    if (pos == std::string::npos) {
      out.emplace_back(key.substr(start));
      start = key.size() + 1;  // remaining parts empty
      while (out.size() + 1 < parts) {
        out.emplace_back();
      }
      break;
    }
    out.emplace_back(key.substr(start, pos - start));
    start = pos + 1;
  }
  out.emplace_back(start <= key.size() ? key.substr(start) : std::string());
  return out;
}

}  // namespace

Engine::Engine()
    : Engine(std::make_shared<SymbolTable>(/*fold_case=*/true),
             std::make_shared<SymbolTable>(/*fold_case=*/false)) {}

Engine::Engine(std::shared_ptr<SymbolTable> attrs, std::shared_ptr<SymbolTable> streams)
    : attrs_(std::move(attrs)), streams_(std::move(streams)) {}

std::string Engine::join_key(const std::vector<std::string>& parts) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out += '\x1f';
    }
    out += parts[i];
  }
  return out;
}

QueryId Engine::register_query(Query query, Listener listener) {
  const QueryId id = ids_.next();
  QueryState qs;
  qs.id = id;
  qs.plan = CompiledQuery::compile(query, *attrs_, *streams_);
  qs.query = std::move(query);
  qs.listener = std::move(listener);
  queries_.push_back(std::move(qs));
  return id;
}

bool Engine::remove_query(QueryId id) {
  for (auto it = queries_.begin(); it != queries_.end(); ++it) {
    if (it->id == id) {
      queries_.erase(it);
      return true;
    }
  }
  return false;
}

Engine::QueryState* Engine::find_query(QueryId id) {
  for (QueryState& qs : queries_) {
    if (qs.id == id) {
      return &qs;
    }
  }
  return nullptr;
}

const Engine::QueryState* Engine::find_query(QueryId id) const {
  for (const QueryState& qs : queries_) {
    if (qs.id == id) {
      return &qs;
    }
  }
  return nullptr;
}

const Query* Engine::query(QueryId id) const {
  const QueryState* qs = find_query(id);
  return qs == nullptr ? nullptr : &qs->query;
}

bool Engine::event_matches(QueryState& qs, const SlottedEvent& e) {
  const CompiledQuery& plan = qs.plan;
  if (plan.stream != kNoSlot && plan.stream != e.stream) {
    return false;
  }
  if (plan.where == CompiledQuery::WhereMode::kNone) {
    return true;
  }
  if (plan.where == CompiledQuery::WhereMode::kFast && use_fast_path_) {
    for (const FastPred& p : plan.preds) {
      if (!eval_fast_pred(p, e)) {
        return false;
      }
    }
    return true;
  }
  // Compatibility adapter: rebuild a ClassAd view and run the expression.
  classad::ClassAd ad;
  to_classad(e, *attrs_, ad);
  const classad::Value v = ad.evaluate_expr(*qs.query.where);
  return v.is_bool() && v.as_bool();
}

void Engine::build_group_key(const CompiledQuery& plan, const SlottedEvent& e) {
  group_key_buf_.clear();
  for (std::size_t i = 0; i < plan.group_slots.size(); ++i) {
    if (i != 0) {
      group_key_buf_ += '\x1f';
    }
    append_key_value(group_key_buf_, e.get(plan.group_slots[i]));
  }
}

bool Engine::resolve_group(QueryState& qs, const std::string& key, bool create,
                           std::uint64_t& out) {
  std::uint64_t h = hash_key(key);
  for (;;) {
    const auto it = qs.groups.find(h);
    if (it == qs.groups.end()) {
      if (!create) {
        return false;
      }
      GroupState g;
      g.key = key;
      g.key_values = split_key(key, qs.query.group_by.size());
      g.sums.assign(qs.plan.numeric_aggs, 0.0);
      g.non_null.assign(qs.plan.numeric_aggs, 0);
      g.mono.resize(qs.plan.numeric_aggs);
      qs.groups.emplace(h, std::move(g));
      out = h;
      return true;
    }
    if (it->second.key == key) {
      out = h;
      return true;
    }
    ++h;  // 64-bit collision between distinct keys: probe forward
  }
}

void Engine::insert_event(QueryState& qs, const SlottedEvent& e, std::uint64_t group_id) {
  GroupState& g = qs.groups.find(group_id)->second;
  ++g.count;
  const std::uint64_t seq = g.next_seq++;
  const CompiledQuery& plan = qs.plan;
  if (plan.numeric_aggs > 0) {
    for (std::size_t i = 0; i < qs.query.select.size(); ++i) {
      const std::int32_t ni = plan.agg_numeric_index[i];
      if (ni < 0) {
        continue;
      }
      const SlotValue* v = e.get(plan.agg_slots[i]);
      double val = std::nan("");
      if (v != nullptr && v->is_number()) {
        const double n = v->as_number();
        if (!std::isnan(n)) {
          val = n;
          g.sums[ni] += n;
          ++g.non_null[ni];
          if (plan.agg_is_minmax[i]) {
            std::deque<MonoEntry>& dq = g.mono[ni];
            if (qs.query.select[i].kind == Aggregate::Kind::kMin) {
              while (!dq.empty() && dq.back().value > n) {
                dq.pop_back();
              }
            } else {
              while (!dq.empty() && dq.back().value < n) {
                dq.pop_back();
              }
            }
            dq.push_back(MonoEntry{n, seq});
          }
        }
      }
      qs.ring_values.push_back(val);
    }
  }
  qs.ring.push_back(WindowEntry{e.time.micros(), group_id, seq});
}

void Engine::evict_front(QueryState& qs) {
  const WindowEntry ent = qs.ring.front();
  qs.ring.pop_front();
  const auto it = qs.groups.find(ent.group);
  assert(it != qs.groups.end() && "evicting from a missing group");
  GroupState& g = it->second;
  --g.count;
  const CompiledQuery& plan = qs.plan;
  if (plan.numeric_aggs > 0) {
    for (std::size_t i = 0; i < qs.query.select.size(); ++i) {
      const std::int32_t ni = plan.agg_numeric_index[i];
      if (ni < 0) {
        continue;
      }
      const double val = qs.ring_values.front();
      qs.ring_values.pop_front();
      if (!std::isnan(val)) {
        g.sums[ni] -= val;
        --g.non_null[ni];
        if (plan.agg_is_minmax[i]) {
          std::deque<MonoEntry>& dq = g.mono[ni];
          if (!dq.empty() && dq.front().seq == ent.seq) {
            dq.pop_front();
          }
        }
      }
    }
  }
  if (g.count == 0) {
    qs.groups.erase(it);
  }
}

void Engine::evict_time(QueryState& qs, sim::SimTime now) {
  if (qs.query.window.kind != WindowSpec::Kind::kTime) {
    return;
  }
  const std::int64_t cutoff = (now - qs.query.window.duration).micros();
  while (!qs.ring.empty() && qs.ring.front().time_us <= cutoff) {
    evict_front(qs);
  }
}

void Engine::notify(QueryState& qs, std::uint64_t group_id) {
  if (!qs.listener) {
    return;
  }
  const auto it = qs.groups.find(group_id);
  if (it == qs.groups.end()) {
    return;
  }
  const ResultRow row = render_row(qs.query, export_group(qs, it->second));
  if (qs.query.having) {
    const classad::Value v = row.values.evaluate_expr(*qs.query.having);
    if (!v.is_bool() || !v.as_bool()) {
      return;
    }
  }
  qs.listener(row);
}

void Engine::push_slotted(const SlottedEvent& event) {
  ++events_processed_;
  for (QueryState& qs : queries_) {
    // Time advances for every query's window, matching or not.
    evict_time(qs, event.time);
    if (!event_matches(qs, event)) {
      continue;
    }
    build_group_key(qs.plan, event);
    std::uint64_t gid = 0;
    resolve_group(qs, group_key_buf_, /*create=*/true, gid);
    insert_event(qs, event, gid);
    if (qs.query.window.kind == WindowSpec::Kind::kLength) {
      while (qs.ring.size() > qs.query.window.count) {
        evict_front(qs);
      }
    }
    notify(qs, gid);
  }
}

void Engine::push(const Event& event) {
  convert_scratch_.reset(event.time, streams_->intern(event.type));
  for (const std::string& name : event.attrs.attribute_names()) {
    const classad::Value v = event.attrs.evaluate(name);
    const Slot slot = attrs_->intern(name);
    switch (v.type()) {
      case classad::Value::Type::kBool:
        convert_scratch_.set_bool(slot, v.as_bool());
        break;
      case classad::Value::Type::kInt:
        convert_scratch_.set_int(slot, v.as_int());
        break;
      case classad::Value::Type::kReal:
        convert_scratch_.set_real(slot, v.as_real());
        break;
      case classad::Value::Type::kString:
        convert_scratch_.set_string(slot, v.as_string());
        break;
      default:
        break;  // UNDEFINED / ERROR attributes stay absent
    }
  }
  push_slotted(convert_scratch_);
}

void Engine::advance_to(sim::SimTime now) {
  for (QueryState& qs : queries_) {
    evict_time(qs, now);
  }
}

Engine::RawGroup Engine::export_group(const QueryState& qs, const GroupState& g) const {
  RawGroup out;
  out.key = g.key;
  out.key_values = g.key_values;
  out.count = g.count;
  out.aggs.resize(qs.query.select.size());
  for (std::size_t i = 0; i < qs.query.select.size(); ++i) {
    const std::int32_t ni = qs.plan.agg_numeric_index[i];
    if (ni < 0) {
      continue;
    }
    RawAggregate& agg = out.aggs[i];
    agg.sum = g.sums[ni];
    agg.non_null = g.non_null[ni];
    if (qs.plan.agg_is_minmax[i] && !g.mono[ni].empty()) {
      agg.extreme = g.mono[ni].front().value;
      agg.has_extreme = true;
    }
  }
  return out;
}

ResultRow Engine::render_row(const Query& q, const RawGroup& g) {
  ResultRow row;
  for (std::size_t i = 0; i < q.group_by.size(); ++i) {
    row.values.insert_string(q.group_by[i], g.key_values[i]);
  }
  for (std::size_t i = 0; i < q.select.size(); ++i) {
    const Aggregate& agg = q.select[i];
    switch (agg.kind) {
      case Aggregate::Kind::kCount:
        row.values.insert_int(agg.alias, static_cast<std::int64_t>(g.count));
        break;
      case Aggregate::Kind::kSum:
        row.values.insert_real(agg.alias, g.aggs[i].sum);
        break;
      case Aggregate::Kind::kAvg:
        if (g.aggs[i].non_null > 0) {
          row.values.insert_real(agg.alias,
                                 g.aggs[i].sum / static_cast<double>(g.aggs[i].non_null));
        }
        break;
      case Aggregate::Kind::kMin:
      case Aggregate::Kind::kMax:
        if (g.aggs[i].has_extreme) {
          row.values.insert_real(agg.alias, g.aggs[i].extreme);
        }
        break;
    }
  }
  return row;
}

std::vector<Engine::RawGroup> Engine::raw_snapshot(QueryId id) const {
  std::vector<RawGroup> out;
  const QueryState* qs = find_query(id);
  if (qs == nullptr) {
    return out;
  }
  out.reserve(qs->groups.size());
  for (const auto& [h, g] : qs->groups) {
    out.push_back(export_group(*qs, g));
  }
  std::sort(out.begin(), out.end(),
            [](const RawGroup& a, const RawGroup& b) { return a.key < b.key; });
  return out;
}

std::optional<Engine::RawGroup> Engine::raw_group(QueryId id, const std::string& key) const {
  const QueryState* qs = find_query(id);
  if (qs == nullptr) {
    return std::nullopt;
  }
  std::uint64_t h = hash_key(key);
  for (;;) {
    const auto it = qs->groups.find(h);
    if (it == qs->groups.end()) {
      return std::nullopt;
    }
    if (it->second.key == key) {
      return export_group(*qs, it->second);
    }
    ++h;
  }
}

std::vector<ResultRow> Engine::snapshot(QueryId id) {
  std::vector<ResultRow> out;
  const QueryState* qs = find_query(id);
  if (qs == nullptr) {
    return out;
  }
  std::vector<RawGroup> raw = raw_snapshot(id);
  out.reserve(raw.size());
  for (const RawGroup& g : raw) {
    out.push_back(render_row(qs->query, g));
  }
  return out;
}

void Engine::for_each_group_count(QueryId id, const GroupCountVisitor& fn) {
  const QueryState* qs = find_query(id);
  if (qs == nullptr) {
    return;
  }
  // Sort by joined key so scalar and sharded iteration agree exactly.
  std::vector<const GroupState*> groups;
  groups.reserve(qs->groups.size());
  for (const auto& [h, g] : qs->groups) {
    groups.push_back(&g);
  }
  std::sort(groups.begin(), groups.end(),
            [](const GroupState* a, const GroupState* b) { return a->key < b->key; });
  for (const GroupState* g : groups) {
    fn(g->key_values, g->count);
  }
}

std::optional<ResultRow> Engine::group_row(QueryId id, const std::vector<std::string>& key) {
  const QueryState* qs = find_query(id);
  if (qs == nullptr) {
    return std::nullopt;
  }
  const auto raw = raw_group(id, join_key(key));
  if (!raw) {
    return std::nullopt;
  }
  return render_row(qs->query, *raw);
}

}  // namespace erms::cep
