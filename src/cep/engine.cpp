#include "cep/engine.h"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "cep/event.h"
#include "snapshot/codec.h"

namespace erms::cep {

namespace {

/// 64-bit FNV-1a over the joined group key.
std::uint64_t hash_key(const std::string& key) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// Append a slot value rendered exactly as the ClassAd path rendered group
/// keys: strings unquoted, ints/reals/bools via Value::to_string, missing
/// attributes as the empty string.
void append_key_value(std::string& out, const SlotValue* v) {
  if (v == nullptr) {
    return;
  }
  switch (v->kind) {
    case SlotValue::Kind::kString:
      out.append(v->s);
      break;
    case SlotValue::Kind::kInt: {
      char buf[24];
      const auto res = std::to_chars(buf, buf + sizeof(buf), v->i);
      out.append(buf, res.ptr);
      break;
    }
    case SlotValue::Kind::kReal: {
      char buf[48];
      const int n = std::snprintf(buf, sizeof(buf), "%g", v->r);
      out.append(buf, static_cast<std::size_t>(n));
      break;
    }
    case SlotValue::Kind::kBool:
      out.append(v->b ? "true" : "false");
      break;
    case SlotValue::Kind::kNull:
      break;
  }
}

/// Recover the per-attribute key values from the joined key, assigning into
/// a reused vector so a recycled group slot keeps its string capacity.
void split_key_into(const std::string& key, std::size_t parts,
                    std::vector<std::string>& out) {
  out.resize(parts);
  if (parts == 0) {
    return;
  }
  std::size_t start = 0;
  std::size_t i = 0;
  for (; i + 1 < parts; ++i) {
    const std::size_t pos = key.find('\x1f', start);
    if (pos == std::string::npos) {
      out[i].assign(key, start, key.size() - start);
      for (++i; i + 1 < parts; ++i) {
        out[i].clear();
      }
      start = key.size() + 1;  // remaining parts empty
      break;
    }
    out[i].assign(key, start, pos - start);
    start = pos + 1;
  }
  if (start <= key.size()) {
    out[parts - 1].assign(key, start, key.size() - start);
  } else {
    out[parts - 1].clear();
  }
}

}  // namespace

Engine::Engine()
    : Engine(std::make_shared<SymbolTable>(/*fold_case=*/true),
             std::make_shared<SymbolTable>(/*fold_case=*/false)) {}

Engine::Engine(std::shared_ptr<SymbolTable> attrs, std::shared_ptr<SymbolTable> streams)
    : attrs_(std::move(attrs)), streams_(std::move(streams)) {}

std::string Engine::join_key(const std::vector<std::string>& parts) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out += '\x1f';
    }
    out += parts[i];
  }
  return out;
}

QueryId Engine::register_query(Query query, Listener listener) {
  const QueryId id = ids_.next();
  QueryState qs;
  qs.id = id;
  qs.plan = CompiledQuery::compile(query, *attrs_, *streams_);
  qs.query = std::move(query);
  qs.listener = std::move(listener);
  queries_.push_back(std::move(qs));
  return id;
}

bool Engine::remove_query(QueryId id) {
  for (auto it = queries_.begin(); it != queries_.end(); ++it) {
    if (it->id == id) {
      queries_.erase(it);
      return true;
    }
  }
  return false;
}

Engine::QueryState* Engine::find_query(QueryId id) {
  for (QueryState& qs : queries_) {
    if (qs.id == id) {
      return &qs;
    }
  }
  return nullptr;
}

const Engine::QueryState* Engine::find_query(QueryId id) const {
  for (const QueryState& qs : queries_) {
    if (qs.id == id) {
      return &qs;
    }
  }
  return nullptr;
}

const Query* Engine::query(QueryId id) const {
  const QueryState* qs = find_query(id);
  return qs == nullptr ? nullptr : &qs->query;
}

bool Engine::event_matches(QueryState& qs, const SlottedEvent& e) {
  const CompiledQuery& plan = qs.plan;
  if (plan.stream != kNoSlot && plan.stream != e.stream) {
    return false;
  }
  if (plan.where == CompiledQuery::WhereMode::kNone) {
    return true;
  }
  if (plan.where == CompiledQuery::WhereMode::kFast && use_fast_path_) {
    for (const FastPred& p : plan.preds) {
      if (!eval_fast_pred(p, e)) {
        return false;
      }
    }
    return true;
  }
  // Compatibility adapter: rebuild a ClassAd view and run the expression.
  classad::ClassAd ad;
  to_classad(e, *attrs_, ad);
  const classad::Value v = ad.evaluate_expr(*qs.query.where);
  return v.is_bool() && v.as_bool();
}

void Engine::build_group_key(const CompiledQuery& plan, const SlottedEvent& e,
                             std::string& out) {
  out.clear();
  for (std::size_t i = 0; i < plan.group_slots.size(); ++i) {
    if (i != 0) {
      out += '\x1f';
    }
    append_key_value(out, e.get(plan.group_slots[i]));
  }
}

void Engine::rehash(QueryState& qs, std::size_t min_buckets) {
  std::size_t cap = 16;
  while (cap < min_buckets) {
    cap <<= 1;
  }
  qs.buckets.assign(cap, kEmptyBucket);
  const std::size_t mask = cap - 1;
  for (std::size_t s = 0; s < qs.slots.size(); ++s) {
    GroupState& g = qs.slots[s];
    if (g.count == 0) {
      continue;  // freelisted slot
    }
    std::size_t i = g.hash & mask;
    while (qs.buckets[i] != kEmptyBucket) {
      i = (i + 1) & mask;
    }
    qs.buckets[i] = static_cast<std::uint32_t>(s);
    g.bucket = static_cast<std::uint32_t>(i);
  }
  qs.bucket_used = qs.live_groups;
}

std::uint32_t Engine::find_slot(const QueryState& qs, const std::string& key) const {
  if (qs.buckets.empty()) {
    return kEmptyBucket;
  }
  const std::uint64_t h = hash_key(key);
  const std::size_t mask = qs.buckets.size() - 1;
  std::size_t i = h & mask;
  for (;;) {
    const std::uint32_t b = qs.buckets[i];
    if (b == kEmptyBucket) {
      return kEmptyBucket;
    }
    if (b != kTombBucket) {
      const GroupState& g = qs.slots[b];
      if (g.hash == h && g.key == key) {
        return b;
      }
    }
    i = (i + 1) & mask;
  }
}

std::uint32_t Engine::resolve_group(QueryState& qs, const std::string& key, bool create) {
  return resolve_group(qs, key, hash_key(key), create);
}

std::uint32_t Engine::resolve_group(QueryState& qs, const std::string& key,
                                    const std::uint64_t h, bool create) {
  if (qs.buckets.empty()) {
    if (!create) {
      return kEmptyBucket;
    }
    rehash(qs, 16);
  }
  std::size_t mask = qs.buckets.size() - 1;
  std::size_t i = h & mask;
  std::size_t insert_at = static_cast<std::size_t>(-1);  // first tombstone seen
  for (;;) {
    const std::uint32_t b = qs.buckets[i];
    if (b == kEmptyBucket) {
      break;
    }
    if (b == kTombBucket) {
      if (insert_at == static_cast<std::size_t>(-1)) {
        insert_at = i;
      }
    } else {
      const GroupState& g = qs.slots[b];
      if (g.hash == h && g.key == key) {
        return b;
      }
    }
    i = (i + 1) & mask;
  }
  if (!create) {
    return kEmptyBucket;
  }
  const bool fills_empty = insert_at == static_cast<std::size_t>(-1);
  if (fills_empty && (qs.bucket_used + 1) * 2 > qs.buckets.size()) {
    // Keep the table at most half full of live+tombstone buckets. Sizing off
    // the live count alone sheds accumulated tombstones, so a churn-heavy
    // steady state rehashes the same-sized table every ~live/2 erases —
    // amortized O(1) per operation.
    rehash(qs, (qs.live_groups + 1) * 4);
    mask = qs.buckets.size() - 1;
    i = h & mask;
    while (qs.buckets[i] != kEmptyBucket) {
      i = (i + 1) & mask;
    }
    insert_at = i;   // rehash reset bucket_used to the live count
    ++qs.bucket_used;
  } else if (fills_empty) {
    insert_at = i;
    ++qs.bucket_used;
  }
  // Take a recycled slot if one is free; its strings keep their capacity.
  std::uint32_t slot;
  if (!qs.free_slots.empty()) {
    slot = qs.free_slots.back();
    qs.free_slots.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(qs.slots.size());
    qs.slots.emplace_back();
  }
  GroupState& g = qs.slots[slot];
  g.hash = h;
  g.bucket = static_cast<std::uint32_t>(insert_at);
  g.key.assign(key);
  split_key_into(key, qs.query.group_by.size(), g.key_values);
  g.count = 0;
  g.next_seq = 0;
  g.sums.assign(qs.plan.numeric_aggs, 0.0);
  g.non_null.assign(qs.plan.numeric_aggs, 0);
  if (g.mono.size() != qs.plan.numeric_aggs) {
    g.mono.resize(qs.plan.numeric_aggs);
  } else {
    for (auto& dq : g.mono) {
      dq.clear();
    }
  }
  ++qs.live_groups;
  qs.buckets[insert_at] = slot;
  return slot;
}

void Engine::erase_group(QueryState& qs, std::uint32_t slot) {
  const GroupState& g = qs.slots[slot];
  assert(qs.buckets[g.bucket] == slot && "group's cached bucket index is stale");
  qs.buckets[g.bucket] = kTombBucket;
  --qs.live_groups;
  qs.free_slots.push_back(slot);
}

void Engine::insert_event(QueryState& qs, const SlottedEvent& e, std::uint32_t slot) {
  GroupState& g = qs.slots[slot];
  ++g.count;
  const std::uint64_t seq = g.next_seq++;
  const CompiledQuery& plan = qs.plan;
  if (plan.numeric_aggs > 0) {
    for (std::size_t i = 0; i < qs.query.select.size(); ++i) {
      const std::int32_t ni = plan.agg_numeric_index[i];
      if (ni < 0) {
        continue;
      }
      const SlotValue* v = e.get(plan.agg_slots[i]);
      double val = std::nan("");
      if (v != nullptr && v->is_number()) {
        const double n = v->as_number();
        if (!std::isnan(n)) {
          val = n;
          g.sums[ni] += n;
          ++g.non_null[ni];
          if (plan.agg_is_minmax[i]) {
            std::deque<MonoEntry>& dq = g.mono[ni];
            if (qs.query.select[i].kind == Aggregate::Kind::kMin) {
              while (!dq.empty() && dq.back().value > n) {
                dq.pop_back();
              }
            } else {
              while (!dq.empty() && dq.back().value < n) {
                dq.pop_back();
              }
            }
            dq.push_back(MonoEntry{n, seq});
          }
        }
      }
      qs.ring_values.push_back(val);
    }
  }
  qs.ring.push_back(WindowEntry{e.time.micros(), slot, seq});
}

void Engine::evict_front(QueryState& qs) {
  const WindowEntry ent = qs.ring.front();
  qs.ring.pop_front();
  GroupState& g = qs.slots[ent.slot];
  assert(g.count > 0 && "evicting from a missing group");
  --g.count;
  const CompiledQuery& plan = qs.plan;
  if (plan.numeric_aggs > 0) {
    for (std::size_t i = 0; i < qs.query.select.size(); ++i) {
      const std::int32_t ni = plan.agg_numeric_index[i];
      if (ni < 0) {
        continue;
      }
      const double val = qs.ring_values.front();
      qs.ring_values.pop_front();
      if (!std::isnan(val)) {
        g.sums[ni] -= val;
        --g.non_null[ni];
        if (plan.agg_is_minmax[i]) {
          std::deque<MonoEntry>& dq = g.mono[ni];
          if (!dq.empty() && dq.front().seq == ent.seq) {
            dq.pop_front();
          }
        }
      }
    }
  }
  if (g.count == 0) {
    erase_group(qs, ent.slot);
  }
}

void Engine::evict_time(QueryState& qs, sim::SimTime now) {
  if (qs.query.window.kind != WindowSpec::Kind::kTime) {
    return;
  }
  const std::int64_t cutoff = (now - qs.query.window.duration).micros();
  // Eviction's cache miss is the victim's GroupState line (the ring entries
  // themselves are contiguous). Keep the next few victims' lines in flight
  // so a burst of expiries doesn't stall once per entry.
  constexpr std::size_t kAhead = 4;
  std::size_t primed = 0;  // entries [0, primed) of the ring are prefetched
  while (!qs.ring.empty() && qs.ring.front().time_us <= cutoff) {
    while (primed < kAhead && primed < qs.ring.size() &&
           qs.ring[primed].time_us <= cutoff) {
      __builtin_prefetch(&qs.slots[qs.ring[primed].slot]);
      ++primed;
    }
    evict_front(qs);
    if (primed > 0) {
      --primed;
    }
  }
}

void Engine::notify(QueryState& qs, std::uint32_t slot) {
  if (!qs.listener) {
    return;
  }
  const GroupState& g = qs.slots[slot];
  if (g.count == 0) {
    return;  // the group was fully evicted by a LENGTH window before notify
  }
  const ResultRow row = render_row(qs.query, export_group(qs, g));
  if (qs.query.having) {
    const classad::Value v = row.values.evaluate_expr(*qs.query.having);
    if (!v.is_bool() || !v.as_bool()) {
      return;
    }
  }
  qs.listener(row);
}

void Engine::push_one(QueryState& qs, const SlottedEvent& event) {
  // Time advances for every query's window, matching or not.
  evict_time(qs, event.time);
  if (!event_matches(qs, event)) {
    return;
  }
  build_group_key(qs.plan, event, group_key_buf_);
  const std::uint32_t slot = resolve_group(qs, group_key_buf_, /*create=*/true);
  insert_event(qs, event, slot);
  if (qs.query.window.kind == WindowSpec::Kind::kLength) {
    while (qs.ring.size() > qs.query.window.count) {
      evict_front(qs);
    }
  }
  notify(qs, slot);
}

void Engine::push_slotted(const SlottedEvent& event) {
  ++events_processed_;
  for (QueryState& qs : queries_) {
    push_one(qs, event);
  }
}

void Engine::push_batch(const EventBatch& batch) {
  events_processed_ += batch.size();
  // Query-major: queries share no state, so running the whole batch through
  // one query before the next gives byte-identical per-query results to the
  // per-event path while keeping each query's plan, buckets and ring hot in
  // cache. Only listener firing order differs within a batch.
  for (QueryState& qs : queries_) {
    push_batch_query(qs, batch);
  }
}

void Engine::push_batch_query(QueryState& qs, const EventBatch& batch) {
  const std::size_t n = batch.size();
  if (n < kPipeDepth * 2) {
    for (std::size_t i = 0; i < n; ++i) {
      push_one(qs, batch[i]);
    }
    return;
  }
  // A matched event costs two dependent cache misses in resolve_group: the
  // bucket line (h & mask into a multi-MB array), then the GroupState line
  // it points at. This pipeline hides both behind later events' pure work.
  //
  //   fetch(i):  match test, key render, FNV hash — all functions of the
  //              event and the immutable plan only — then prefetch the
  //              bucket line for the hash.
  //   probe(i):  peek the head bucket (its line is arriving by now) and
  //              prefetch the GroupState it names. The peek is only a hint:
  //              retire() may rehash or erase between probe and retirement,
  //              so retirement re-probes from scratch — a stale prefetch
  //              wastes a line, never correctness.
  //   retire(i): every mutation, in event order — evict_time, full
  //              resolve_group on the precomputed (key, hash), insert_event,
  //              LENGTH eviction, notify. Identical call sequence to
  //              push_one, so query state stays byte-identical.
  constexpr std::size_t kMask = kPipeDepth - 1;
  constexpr std::size_t kProbeLag = kPipeDepth / 2;
  const auto fetch = [&](std::size_t i) {
    const SlottedEvent& e = batch[i];
    PipeSlot& p = pipe_[i & kMask];
    p.matched = event_matches(qs, e);
    if (!p.matched) {
      return;
    }
    build_group_key(qs.plan, e, p.key);
    p.hash = hash_key(p.key);
    if (!qs.buckets.empty()) {
      __builtin_prefetch(&qs.buckets[p.hash & (qs.buckets.size() - 1)]);
    }
    // Warm the likely eviction victims too: by the time this event retires,
    // retirement will have consumed a few ring entries, so prefetch a little
    // way in. (Bursts are short — often one victim per event — so the
    // in-loop lookahead in evict_time alone starts every burst cold.)
    const std::size_t live = qs.ring.size();
    if (live > kPipeDepth) {
      __builtin_prefetch(&qs.slots[qs.ring[kPipeDepth - 2].slot]);
    }
  };
  const auto probe = [&](std::size_t i) {
    const PipeSlot& p = pipe_[i & kMask];
    if (!p.matched || qs.buckets.empty()) {
      return;
    }
    const std::uint32_t b = qs.buckets[p.hash & (qs.buckets.size() - 1)];
    if (b < qs.slots.size()) {  // excludes the empty/tombstone sentinels
      __builtin_prefetch(&qs.slots[b]);
    }
  };
  const auto retire = [&](std::size_t i) {
    const SlottedEvent& e = batch[i];
    evict_time(qs, e.time);
    const PipeSlot& p = pipe_[i & kMask];
    if (!p.matched) {
      return;
    }
    const std::uint32_t slot = resolve_group(qs, p.key, p.hash, /*create=*/true);
    insert_event(qs, e, slot);
    if (qs.query.window.kind == WindowSpec::Kind::kLength) {
      while (qs.ring.size() > qs.query.window.count) {
        evict_front(qs);
      }
    }
    notify(qs, slot);
  };
  // retire() runs first each step so slot (t & kMask) is free before
  // fetch(t) overwrites it.
  for (std::size_t t = 0; t < n + kPipeDepth; ++t) {
    if (t >= kPipeDepth) {
      retire(t - kPipeDepth);
    }
    if (t < n) {
      fetch(t);
    }
    if (t >= kProbeLag && t - kProbeLag < n) {
      probe(t - kProbeLag);
    }
  }
}

void Engine::push(const Event& event) {
  convert_scratch_.reset(event.time, streams_->intern(event.type));
  for (const std::string& name : event.attrs.attribute_names()) {
    const classad::Value v = event.attrs.evaluate(name);
    const Slot slot = attrs_->intern(name);
    switch (v.type()) {
      case classad::Value::Type::kBool:
        convert_scratch_.set_bool(slot, v.as_bool());
        break;
      case classad::Value::Type::kInt:
        convert_scratch_.set_int(slot, v.as_int());
        break;
      case classad::Value::Type::kReal:
        convert_scratch_.set_real(slot, v.as_real());
        break;
      case classad::Value::Type::kString:
        convert_scratch_.set_string(slot, v.as_string());
        break;
      default:
        break;  // UNDEFINED / ERROR attributes stay absent
    }
  }
  push_slotted(convert_scratch_);
}

void Engine::advance_to(sim::SimTime now) {
  for (QueryState& qs : queries_) {
    evict_time(qs, now);
  }
}

Engine::RawGroup Engine::export_group(const QueryState& qs, const GroupState& g) const {
  RawGroup out;
  out.key = g.key;
  out.key_values = g.key_values;
  out.count = g.count;
  out.aggs.resize(qs.query.select.size());
  for (std::size_t i = 0; i < qs.query.select.size(); ++i) {
    const std::int32_t ni = qs.plan.agg_numeric_index[i];
    if (ni < 0) {
      continue;
    }
    RawAggregate& agg = out.aggs[i];
    agg.sum = g.sums[ni];
    agg.non_null = g.non_null[ni];
    if (qs.plan.agg_is_minmax[i] && !g.mono[ni].empty()) {
      agg.extreme = g.mono[ni].front().value;
      agg.has_extreme = true;
    }
  }
  return out;
}

ResultRow Engine::render_row(const Query& q, const RawGroup& g) {
  ResultRow row;
  for (std::size_t i = 0; i < q.group_by.size(); ++i) {
    row.values.insert_string(q.group_by[i], g.key_values[i]);
  }
  for (std::size_t i = 0; i < q.select.size(); ++i) {
    const Aggregate& agg = q.select[i];
    switch (agg.kind) {
      case Aggregate::Kind::kCount:
        row.values.insert_int(agg.alias, static_cast<std::int64_t>(g.count));
        break;
      case Aggregate::Kind::kSum:
        row.values.insert_real(agg.alias, g.aggs[i].sum);
        break;
      case Aggregate::Kind::kAvg:
        if (g.aggs[i].non_null > 0) {
          row.values.insert_real(agg.alias,
                                 g.aggs[i].sum / static_cast<double>(g.aggs[i].non_null));
        }
        break;
      case Aggregate::Kind::kMin:
      case Aggregate::Kind::kMax:
        if (g.aggs[i].has_extreme) {
          row.values.insert_real(agg.alias, g.aggs[i].extreme);
        }
        break;
    }
  }
  return row;
}

std::vector<Engine::RawGroup> Engine::raw_snapshot(QueryId id) const {
  std::vector<RawGroup> out;
  const QueryState* qs = find_query(id);
  if (qs == nullptr) {
    return out;
  }
  out.reserve(qs->live_groups);
  for (const GroupState& g : qs->slots) {
    if (g.count > 0) {
      out.push_back(export_group(*qs, g));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const RawGroup& a, const RawGroup& b) { return a.key < b.key; });
  return out;
}

std::optional<Engine::RawGroup> Engine::raw_group(QueryId id, const std::string& key) const {
  const QueryState* qs = find_query(id);
  if (qs == nullptr) {
    return std::nullopt;
  }
  const std::uint32_t slot = find_slot(*qs, key);
  if (slot == kEmptyBucket) {
    return std::nullopt;
  }
  return export_group(*qs, qs->slots[slot]);
}

std::vector<ResultRow> Engine::snapshot(QueryId id) {
  std::vector<ResultRow> out;
  const QueryState* qs = find_query(id);
  if (qs == nullptr) {
    return out;
  }
  std::vector<RawGroup> raw = raw_snapshot(id);
  out.reserve(raw.size());
  for (const RawGroup& g : raw) {
    out.push_back(render_row(qs->query, g));
  }
  return out;
}

void Engine::for_each_group_count(QueryId id, const GroupCountVisitor& fn,
                                  GroupOrder order) {
  const QueryState* qs = find_query(id);
  if (qs == nullptr) {
    return;
  }
  if (order == GroupOrder::kUnordered) {
    // Pool order: deterministic for a given event history, no sort, no
    // allocation — for consumers that scatter into dense arrays.
    for (const GroupState& g : qs->slots) {
      if (g.count > 0) {
        fn(g.key_values, g.count);
      }
    }
    return;
  }
  // Sort by joined key so scalar and sharded iteration agree exactly.
  visit_scratch_.clear();
  visit_scratch_.reserve(qs->live_groups);
  for (const GroupState& g : qs->slots) {
    if (g.count > 0) {
      visit_scratch_.push_back(&g);
    }
  }
  std::sort(visit_scratch_.begin(), visit_scratch_.end(),
            [](const GroupState* a, const GroupState* b) { return a->key < b->key; });
  for (const GroupState* g : visit_scratch_) {
    fn(g->key_values, g->count);
  }
}

std::optional<ResultRow> Engine::group_row(QueryId id, const std::vector<std::string>& key) {
  const QueryState* qs = find_query(id);
  if (qs == nullptr) {
    return std::nullopt;
  }
  const auto raw = raw_group(id, join_key(key));
  if (!raw) {
    return std::nullopt;
  }
  return render_row(qs->query, *raw);
}

// ---------------------------------------------------------------------------
// Snapshot support. The layout is serialised verbatim — bucket table, slot
// pool, freelist, ring contents — rather than replayed, so probe sequences,
// slot reuse order and therefore every subsequent visit order are identical
// to the uninterrupted run. Doubles travel as raw bit patterns.
// ---------------------------------------------------------------------------

void Engine::save_state(snapshot::Writer& w) {
  w.u64(queries_.size());
  for (const QueryState& qs : queries_) {
    w.u64(qs.id.value());
    w.u32(static_cast<std::uint32_t>(qs.plan.numeric_aggs));

    w.u64(qs.ring.size());
    for (std::size_t i = 0; i < qs.ring.size(); ++i) {
      const WindowEntry& e = qs.ring[i];
      w.i64(e.time_us);
      w.u32(e.slot);
      w.u64(e.seq);
    }
    w.u64(qs.ring_values.size());
    for (std::size_t i = 0; i < qs.ring_values.size(); ++i) {
      w.f64(qs.ring_values[i]);
    }

    w.u64(qs.buckets.size());
    for (const std::uint32_t b : qs.buckets) w.u32(b);

    w.u64(qs.slots.size());
    for (const GroupState& g : qs.slots) {
      w.u64(g.hash);
      w.u32(g.bucket);
      w.str(g.key);
      w.u64(g.key_values.size());
      for (const std::string& v : g.key_values) w.str(v);
      w.u64(g.count);
      w.u64(g.next_seq);
      w.u64(g.sums.size());
      for (const double s : g.sums) w.f64(s);
      w.u64(g.non_null.size());
      for (const std::uint64_t n : g.non_null) w.u64(n);
      w.u64(g.mono.size());
      for (const auto& dq : g.mono) {
        w.u64(dq.size());
        for (const MonoEntry& m : dq) {
          w.f64(m.value);
          w.u64(m.seq);
        }
      }
    }

    w.u64(qs.free_slots.size());
    for (const std::uint32_t s : qs.free_slots) w.u32(s);
    w.u64(qs.live_groups);
    w.u64(qs.bucket_used);
  }
  w.u64(ids_.peek());
  w.u64(events_processed_);
}

void Engine::load_state(snapshot::Reader& r) {
  const std::uint64_t nq = r.u64();
  if (!r.require(nq == queries_.size(), "engine query count")) return;
  for (QueryState& qs : queries_) {
    const std::uint64_t id = r.u64();
    if (!r.require(id == qs.id.value(), "engine query id")) return;
    const std::uint32_t naggs = r.u32();
    if (!r.require(naggs == qs.plan.numeric_aggs, "query aggregate shape")) return;

    const std::uint64_t ring_n = r.u64();
    if (!r.require(ring_n <= r.remaining() / 20 + 1, "window ring size")) return;
    qs.ring.clear();
    for (std::uint64_t i = 0; i < ring_n && r.ok(); ++i) {
      WindowEntry e;
      e.time_us = r.i64();
      e.slot = r.u32();
      e.seq = r.u64();
      qs.ring.push_back(e);
    }
    const std::uint64_t rv_n = r.u64();
    if (!r.require(rv_n <= r.remaining() / 8 + 1, "window values size")) return;
    qs.ring_values.clear();
    for (std::uint64_t i = 0; i < rv_n && r.ok(); ++i) {
      qs.ring_values.push_back(r.f64());
    }

    const std::uint64_t nbuckets = r.u64();
    if (!r.require(nbuckets <= r.remaining() / 4 + 1, "bucket table size")) return;
    qs.buckets.clear();
    qs.buckets.reserve(nbuckets);
    for (std::uint64_t i = 0; i < nbuckets && r.ok(); ++i) {
      qs.buckets.push_back(r.u32());
    }

    const std::uint64_t nslots = r.u64();
    if (!r.require(nslots <= r.remaining(), "slot pool size")) return;
    qs.slots.clear();
    qs.slots.resize(nslots);
    for (std::uint64_t i = 0; i < nslots && r.ok(); ++i) {
      GroupState& g = qs.slots[i];
      g.hash = r.u64();
      g.bucket = r.u32();
      g.key = r.str();
      const std::uint64_t nkv = r.u64();
      if (!r.require(nkv <= r.remaining(), "key value count")) return;
      g.key_values.resize(nkv);
      for (auto& v : g.key_values) v = r.str();
      g.count = r.u64();
      g.next_seq = r.u64();
      const std::uint64_t nsums = r.u64();
      if (!r.require(nsums <= r.remaining() / 8 + 1, "sums size")) return;
      g.sums.resize(nsums);
      for (auto& s : g.sums) s = r.f64();
      const std::uint64_t nnn = r.u64();
      if (!r.require(nnn <= r.remaining() / 8 + 1, "non-null size")) return;
      g.non_null.resize(nnn);
      for (auto& n : g.non_null) n = r.u64();
      const std::uint64_t nmono = r.u64();
      if (!r.require(nmono <= r.remaining(), "mono deque count")) return;
      g.mono.clear();
      g.mono.resize(nmono);
      for (auto& dq : g.mono) {
        const std::uint64_t dn = r.u64();
        if (!r.require(dn <= r.remaining() / 16 + 1, "mono deque size")) return;
        for (std::uint64_t j = 0; j < dn && r.ok(); ++j) {
          MonoEntry m;
          m.value = r.f64();
          m.seq = r.u64();
          dq.push_back(m);
        }
      }
    }

    const std::uint64_t nfree = r.u64();
    if (!r.require(nfree <= r.remaining() / 4 + 1, "freelist size")) return;
    qs.free_slots.clear();
    qs.free_slots.reserve(nfree);
    for (std::uint64_t i = 0; i < nfree && r.ok(); ++i) {
      qs.free_slots.push_back(r.u32());
    }
    qs.live_groups = r.u64();
    qs.bucket_used = r.u64();
  }
  ids_.reset(r.u64());
  events_processed_ = r.u64();
}

}  // namespace erms::cep
