#include "cep/sharded_engine.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <thread>
#include <unordered_map>

#include "cep/event.h"
#include "snapshot/codec.h"

namespace erms::cep {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t hash_bytes(const char* data, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

/// Hash of the routing attribute's typed value; events missing the attribute
/// all land on shard 0.
std::uint64_t route_hash(const SlotValue* v) {
  if (v == nullptr) {
    return 0;
  }
  switch (v->kind) {
    case SlotValue::Kind::kString:
      return hash_bytes(v->s.data(), v->s.size());
    case SlotValue::Kind::kInt:
      return splitmix64(static_cast<std::uint64_t>(v->i));
    case SlotValue::Kind::kReal: {
      std::uint64_t bits = 0;
      static_assert(sizeof(bits) == sizeof(v->r));
      std::memcpy(&bits, &v->r, sizeof(bits));
      return splitmix64(bits);
    }
    case SlotValue::Kind::kBool:
      return v->b ? 1 : 0;
    case SlotValue::Kind::kNull:
      return 0;
  }
  return 0;
}

}  // namespace

ShardedEngine::ShardedEngine(ShardedEngineOptions opts)
    : attrs_(std::make_shared<SymbolTable>(/*fold_case=*/true)),
      streams_(std::make_shared<SymbolTable>(/*fold_case=*/false)),
      batch_events_(std::max<std::size_t>(1, opts.batch_events)),
      pool_(opts.pool) {
  std::size_t n = opts.shards;
  if (n == 0) {
    n = std::max(1u, std::thread::hardware_concurrency());
  }
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Engine>(attrs_, streams_));
  }
  pending_.resize(n);
  route_slot_ = attrs_->intern(opts.route_by);
  if (pool_ == nullptr) {
    owned_pool_ = std::make_unique<util::ThreadPool>(0);
    pool_ = owned_pool_.get();
  }
}

ShardedEngine::~ShardedEngine() { flush(); }

QueryId ShardedEngine::register_query(Query query, Listener listener) {
  flush();
  QueryId id{};
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const QueryId got = shards_[s]->register_query(query, listener);
    if (s == 0) {
      id = got;
    } else {
      assert(got == id && "shard query ids diverged");
      (void)got;
    }
  }
  return id;
}

bool ShardedEngine::remove_query(QueryId id) {
  flush();
  bool removed = false;
  for (auto& shard : shards_) {
    removed = shard->remove_query(id) || removed;
  }
  return removed;
}

std::size_t ShardedEngine::query_count() const { return shards_.front()->query_count(); }

void ShardedEngine::set_use_fast_path(bool on) {
  for (auto& shard : shards_) {
    shard->set_use_fast_path(on);
  }
}

std::size_t ShardedEngine::route(const SlottedEvent& e) const {
  if (shards_.size() == 1) {
    return 0;
  }
  return static_cast<std::size_t>(route_hash(e.get(route_slot_)) % shards_.size());
}

void ShardedEngine::push_slotted(const SlottedEvent& event) {
  ++events_;
  const std::size_t s = route(event);
  pending_[s].append(event);
  ++pending_count_;
  if (!has_pending_ || event.time > pending_max_time_) {
    pending_max_time_ = event.time;
    has_pending_ = true;
  }
  if (pending_[s].size() >= batch_events_) {
    flush();
  }
}

void ShardedEngine::push_batch(const EventBatch& batch) {
  // Same semantics as push_slotted per event — including the mid-batch
  // flush whenever a shard's pending batch fills — but the whole span is
  // routed in one call, so the feed pays one virtual dispatch per batch.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const SlottedEvent& event = batch[i];
    ++events_;
    const std::size_t s = route(event);
    pending_[s].append(event);
    ++pending_count_;
    if (!has_pending_ || event.time > pending_max_time_) {
      pending_max_time_ = event.time;
      has_pending_ = true;
    }
    if (pending_[s].size() >= batch_events_) {
      flush();
    }
  }
}

void ShardedEngine::push(const Event& event) {
  convert_scratch_.reset(event.time, streams_->intern(event.type));
  for (const std::string& name : event.attrs.attribute_names()) {
    const classad::Value v = event.attrs.evaluate(name);
    const Slot slot = attrs_->intern(name);
    switch (v.type()) {
      case classad::Value::Type::kBool:
        convert_scratch_.set_bool(slot, v.as_bool());
        break;
      case classad::Value::Type::kInt:
        convert_scratch_.set_int(slot, v.as_int());
        break;
      case classad::Value::Type::kReal:
        convert_scratch_.set_real(slot, v.as_real());
        break;
      case classad::Value::Type::kString:
        convert_scratch_.set_string(slot, v.as_string());
        break;
      default:
        break;
    }
  }
  push_slotted(convert_scratch_);
}

void ShardedEngine::flush() {
  if (!has_pending_) {
    return;
  }
  const sim::SimTime max_time = pending_max_time_;
  pool_->parallel_for(shards_.size(), [this, max_time](std::size_t s) {
    Engine& eng = *shards_[s];
    eng.push_batch(pending_[s]);
    // Mirror the scalar engine: every query's time window has seen the
    // batch's high-water time, whether or not this shard got an event.
    eng.advance_to(max_time);
  });
  for (EventBatch& batch : pending_) {
    batch.clear();
  }
  pending_count_ = 0;
  has_pending_ = false;
}

void ShardedEngine::advance_to(sim::SimTime now) {
  flush();
  for (auto& shard : shards_) {
    shard->advance_to(now);
  }
}

std::vector<Engine::RawGroup> ShardedEngine::merged_raw(QueryId id, GroupOrder order) {
  flush();
  std::vector<Engine::RawGroup> merged;
  const Query* q = shards_.front()->query(id);
  if (q == nullptr) {
    return merged;
  }
  std::unordered_map<std::string, std::size_t> index;
  for (auto& shard : shards_) {
    for (Engine::RawGroup& g : shard->raw_snapshot(id)) {
      const auto [it, inserted] = index.emplace(g.key, merged.size());
      if (inserted) {
        merged.push_back(std::move(g));
        continue;
      }
      Engine::RawGroup& dst = merged[it->second];
      dst.count += g.count;
      for (std::size_t i = 0; i < q->select.size(); ++i) {
        Engine::RawAggregate& a = dst.aggs[i];
        const Engine::RawAggregate& b = g.aggs[i];
        a.sum += b.sum;
        a.non_null += b.non_null;
        if (b.has_extreme) {
          if (!a.has_extreme) {
            a.extreme = b.extreme;
            a.has_extreme = true;
          } else if (q->select[i].kind == Aggregate::Kind::kMin) {
            a.extreme = std::min(a.extreme, b.extreme);
          } else {
            a.extreme = std::max(a.extreme, b.extreme);
          }
        }
      }
    }
  }
  if (order == GroupOrder::kSorted) {
    std::sort(merged.begin(), merged.end(), [](const Engine::RawGroup& a,
                                               const Engine::RawGroup& b) {
      return a.key < b.key;
    });
  }
  return merged;
}

std::vector<ResultRow> ShardedEngine::snapshot(QueryId id) {
  std::vector<ResultRow> out;
  const std::vector<Engine::RawGroup> merged = merged_raw(id);
  const Query* q = shards_.front()->query(id);
  if (q == nullptr) {
    return out;
  }
  out.reserve(merged.size());
  for (const Engine::RawGroup& g : merged) {
    out.push_back(Engine::render_row(*q, g));
  }
  return out;
}

void ShardedEngine::for_each_group_count(QueryId id, const GroupCountVisitor& fn,
                                         GroupOrder order) {
  // With kSorted, merged_raw sums per-shard counts and sorts by joined key,
  // so the visit order and counts are byte-identical to the scalar
  // engine's. kUnordered skips the sort and visits in merge order.
  for (const Engine::RawGroup& g : merged_raw(id, order)) {
    fn(g.key_values, g.count);
  }
}

std::optional<ResultRow> ShardedEngine::group_row(QueryId id,
                                                  const std::vector<std::string>& key) {
  flush();
  const Query* q = shards_.front()->query(id);
  if (q == nullptr) {
    return std::nullopt;
  }
  const std::string joined = Engine::join_key(key);
  std::optional<Engine::RawGroup> merged;
  for (auto& shard : shards_) {
    std::optional<Engine::RawGroup> g = shard->raw_group(id, joined);
    if (!g) {
      continue;
    }
    if (!merged) {
      merged = std::move(g);
      continue;
    }
    merged->count += g->count;
    for (std::size_t i = 0; i < q->select.size(); ++i) {
      Engine::RawAggregate& a = merged->aggs[i];
      const Engine::RawAggregate& b = g->aggs[i];
      a.sum += b.sum;
      a.non_null += b.non_null;
      if (b.has_extreme) {
        if (!a.has_extreme) {
          a.extreme = b.extreme;
          a.has_extreme = true;
        } else if (q->select[i].kind == Aggregate::Kind::kMin) {
          a.extreme = std::min(a.extreme, b.extreme);
        } else {
          a.extreme = std::max(a.extreme, b.extreme);
        }
      }
    }
  }
  if (!merged) {
    return std::nullopt;
  }
  return Engine::render_row(*q, *merged);
}

void ShardedEngine::save_state(snapshot::Writer& w) {
  flush();
  w.u64(shards_.size());
  for (const auto& shard : shards_) {
    shard->save_state(w);
  }
  w.u64(events_);
}

void ShardedEngine::load_state(snapshot::Reader& r) {
  const std::uint64_t n = r.u64();
  if (!r.require(n == shards_.size(), "engine shard count")) return;
  for (const auto& shard : shards_) {
    shard->load_state(r);
    if (!r.ok()) return;
  }
  events_ = r.u64();
}

}  // namespace erms::cep
