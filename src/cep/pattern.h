#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cep/event.h"
#include "classad/expr.h"
#include "util/ids.h"

namespace erms::cep {

struct PatternTag {};
using PatternId = util::StrongId<PatternTag>;

/// A sequence pattern over one stream: an *opening* event followed by at
/// least `follower_count` *follower* events that share the same correlation
/// key, all within `within` of the opening event. This is the CEP
/// "correlation of events" capability the paper leans on (§II: the engine
/// "identifies the most meaningful events from event clouds, analyzes their
/// correlation") — e.g. "a file `create` followed by a burst of `read`s"
/// marks a born-hot file.
struct Pattern {
  std::string name;
  std::string from;                       // stream/type; empty = any
  classad::ExprPtr opening;               // predicate for the opening event
  classad::ExprPtr follower;              // predicate for follower events
  std::vector<std::string> correlate_by;  // attrs the events must share
  std::size_t follower_count{1};
  sim::SimDuration within{sim::seconds(60.0)};
};

/// A completed pattern instance.
struct PatternMatch {
  std::string pattern;
  std::vector<std::string> key;  // correlation attr values, in correlate_by order
  sim::SimTime opened;
  sim::SimTime completed;
};

/// Detects sequence patterns. One open instance per (pattern, key): a new
/// opening event while an instance is open refreshes it (restarting the
/// window); instances expire silently when the window passes.
class PatternDetector {
 public:
  using MatchFn = std::function<void(const PatternMatch&)>;

  PatternId add_pattern(Pattern pattern, MatchFn on_match);
  bool remove_pattern(PatternId id);

  /// Feed one event (non-decreasing times, as the simulation produces).
  void push(const Event& event);

  /// Open (pending) instances of a pattern right now.
  [[nodiscard]] std::size_t open_instances(PatternId id) const;
  [[nodiscard]] std::uint64_t matches_fired() const { return matches_fired_; }
  [[nodiscard]] std::size_t pattern_count() const { return patterns_.size(); }

 private:
  struct Instance {
    sim::SimTime opened;
    std::size_t followers{0};
  };
  struct State {
    Pattern pattern;
    MatchFn on_match;
    std::map<std::string, Instance> open;  // correlation key -> instance
  };

  [[nodiscard]] static bool matches(const classad::ExprPtr& predicate, const Event& event);
  [[nodiscard]] static std::vector<std::string> key_of(const Pattern& pattern,
                                                       const Event& event);
  static void expire(State& state, sim::SimTime now);

  std::map<PatternId, State> patterns_;
  util::IdGenerator<PatternId> ids_{1};
  std::uint64_t matches_fired_{0};
};

}  // namespace erms::cep
