#include "cep/compiled_query.h"

#include <algorithm>
#include <cctype>

#include "classad/expr.h"

namespace erms::cep {

namespace {

using classad::AttrRefExpr;
using classad::BinaryExpr;
using classad::BinaryOp;
using classad::LiteralExpr;

/// lower(a).compare(b_lower) without allocating: `b_lower` is pre-folded.
int ci_compare(const std::string& a, const std::string& b_lower) {
  const std::size_t n = std::min(a.size(), b_lower.size());
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned char ca = static_cast<unsigned char>(
        std::tolower(static_cast<unsigned char>(a[i])));
    const unsigned char cb = static_cast<unsigned char>(b_lower[i]);
    if (ca != cb) {
      return ca < cb ? -1 : 1;
    }
  }
  if (a.size() == b_lower.size()) {
    return 0;
  }
  return a.size() < b_lower.size() ? -1 : 1;
}

bool apply_cmp(BinaryOp op, int cmp) {
  switch (op) {
    case BinaryOp::kEq:
      return cmp == 0;
    case BinaryOp::kNe:
      return cmp != 0;
    case BinaryOp::kLt:
      return cmp < 0;
    case BinaryOp::kLe:
      return cmp <= 0;
    case BinaryOp::kGt:
      return cmp > 0;
    case BinaryOp::kGe:
      return cmp >= 0;
    default:
      return false;  // non-comparison op on strings = ERROR
  }
}

bool is_comparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

BinaryOp flip(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGt;
    case BinaryOp::kLe:
      return BinaryOp::kGe;
    case BinaryOp::kGt:
      return BinaryOp::kLt;
    case BinaryOp::kGe:
      return BinaryOp::kLe;
    default:
      return op;  // == and != are symmetric
  }
}

std::string fold(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool attr_ref_slottable(const AttrRefExpr& ref) {
  // Events have no TARGET scope; MY and unscoped references resolve the same.
  return ref.scope() != AttrRefExpr::Scope::kTarget;
}

FastPred make_pred(Slot slot, BinaryOp op, const classad::Value& lit) {
  FastPred p;
  p.slot = slot;
  p.op = op;
  switch (lit.type()) {
    case classad::Value::Type::kBool:
      p.kind = SlotValue::Kind::kBool;
      p.bval = lit.as_bool();
      break;
    case classad::Value::Type::kInt:
      p.kind = SlotValue::Kind::kInt;
      p.nval = static_cast<double>(lit.as_int());
      break;
    case classad::Value::Type::kReal:
      p.kind = SlotValue::Kind::kReal;
      p.nval = lit.as_real();
      break;
    case classad::Value::Type::kString:
      p.kind = SlotValue::Kind::kString;
      p.sval_lower = fold(lit.as_string());
      break;
    default:
      // Comparing against UNDEFINED/ERROR never yields strict truth; the
      // kNull literal kind makes eval_fast_pred() fail unconditionally.
      p.kind = SlotValue::Kind::kNull;
      break;
  }
  return p;
}

/// Compile `expr` into a conjunction of FastPreds. Returns false when the
/// expression has a shape the fast path cannot reproduce exactly.
bool try_compile(const classad::Expr* expr, SymbolTable& attrs, std::vector<FastPred>& out) {
  if (const auto* ref = dynamic_cast<const AttrRefExpr*>(expr)) {
    if (!attr_ref_slottable(*ref)) {
      return false;
    }
    FastPred p;
    p.slot = attrs.intern(ref->name());
    p.truthy = true;
    out.push_back(std::move(p));
    return true;
  }
  const auto* bin = dynamic_cast<const BinaryExpr*>(expr);
  if (bin == nullptr) {
    return false;
  }
  if (bin->op() == BinaryOp::kAnd) {
    // `false && X` is false and `true && UNDEFINED` is UNDEFINED, so a
    // conjunction is strictly true iff every conjunct is strictly true —
    // conjunct order cannot matter for the engine's match/no-match outcome.
    return try_compile(bin->lhs().get(), attrs, out) &&
           try_compile(bin->rhs().get(), attrs, out);
  }
  if (!is_comparison(bin->op())) {
    return false;
  }
  const auto* lref = dynamic_cast<const AttrRefExpr*>(bin->lhs().get());
  const auto* rlit = dynamic_cast<const LiteralExpr*>(bin->rhs().get());
  if (lref != nullptr && rlit != nullptr && attr_ref_slottable(*lref)) {
    out.push_back(make_pred(attrs.intern(lref->name()), bin->op(), rlit->value()));
    return true;
  }
  const auto* llit = dynamic_cast<const LiteralExpr*>(bin->lhs().get());
  const auto* rref = dynamic_cast<const AttrRefExpr*>(bin->rhs().get());
  if (llit != nullptr && rref != nullptr && attr_ref_slottable(*rref)) {
    out.push_back(make_pred(attrs.intern(rref->name()), flip(bin->op()), llit->value()));
    return true;
  }
  return false;
}

}  // namespace

bool eval_fast_pred(const FastPred& p, const SlottedEvent& e) {
  const SlotValue* v = e.get(p.slot);
  if (v == nullptr) {
    return false;  // UNDEFINED propagates; never strictly true
  }
  if (p.truthy) {
    switch (v->kind) {
      case SlotValue::Kind::kBool:
        return v->b;
      case SlotValue::Kind::kInt:
        return v->i != 0;
      case SlotValue::Kind::kReal:
        return v->r != 0.0;
      default:
        return false;  // string in boolean position = ERROR
    }
  }
  switch (p.kind) {
    case SlotValue::Kind::kNull:
      return false;  // literal was UNDEFINED/ERROR
    case SlotValue::Kind::kString:
      if (v->kind != SlotValue::Kind::kString) {
        return false;  // string vs non-string = ERROR
      }
      return apply_cmp(p.op, ci_compare(v->s, p.sval_lower));
    case SlotValue::Kind::kBool:
      if (v->kind != SlotValue::Kind::kBool) {
        return false;
      }
      if (p.op == BinaryOp::kEq) {
        return v->b == p.bval;
      }
      if (p.op == BinaryOp::kNe) {
        return v->b != p.bval;
      }
      return false;  // ordered compare of booleans = ERROR
    case SlotValue::Kind::kInt:
    case SlotValue::Kind::kReal: {
      if (!v->is_number()) {
        return false;
      }
      // ClassAd compares numerics as doubles regardless of int-ness.
      const double lf = v->as_number();
      const double rf = p.nval;
      switch (p.op) {
        case BinaryOp::kEq:
          return lf == rf;
        case BinaryOp::kNe:
          return lf != rf;
        case BinaryOp::kLt:
          return lf < rf;
        case BinaryOp::kLe:
          return lf <= rf;
        case BinaryOp::kGt:
          return lf > rf;
        case BinaryOp::kGe:
          return lf >= rf;
        default:
          return false;
      }
    }
  }
  return false;
}

CompiledQuery CompiledQuery::compile(const Query& q, SymbolTable& attrs,
                                     SymbolTable& streams) {
  CompiledQuery plan;
  plan.stream = q.from.empty() ? kNoSlot : streams.intern(q.from);
  if (q.where) {
    std::vector<FastPred> preds;
    if (try_compile(q.where.get(), attrs, preds)) {
      plan.where = WhereMode::kFast;
      plan.preds = std::move(preds);
    } else {
      plan.where = WhereMode::kClassAd;
    }
  }
  plan.group_slots.reserve(q.group_by.size());
  for (const std::string& attr : q.group_by) {
    plan.group_slots.push_back(attrs.intern(attr));
  }
  plan.agg_slots.reserve(q.select.size());
  plan.agg_numeric_index.reserve(q.select.size());
  plan.agg_is_minmax.reserve(q.select.size());
  for (const Aggregate& agg : q.select) {
    if (agg.kind == Aggregate::Kind::kCount) {
      plan.agg_slots.push_back(kNoSlot);
      plan.agg_numeric_index.push_back(-1);
      plan.agg_is_minmax.push_back(false);
    } else {
      plan.agg_slots.push_back(attrs.intern(agg.attr));
      plan.agg_numeric_index.push_back(static_cast<std::int32_t>(plan.numeric_aggs++));
      plan.agg_is_minmax.push_back(agg.kind == Aggregate::Kind::kMin ||
                                   agg.kind == Aggregate::Kind::kMax);
    }
  }
  return plan;
}

void to_classad(const SlottedEvent& e, const SymbolTable& attrs, classad::ClassAd& out) {
  for (const Slot slot : e.touched()) {
    const SlotValue* v = e.get(slot);
    if (v == nullptr) {
      continue;
    }
    const std::string& name = attrs.name(slot);
    switch (v->kind) {
      case SlotValue::Kind::kBool:
        out.insert_bool(name, v->b);
        break;
      case SlotValue::Kind::kInt:
        out.insert_int(name, v->i);
        break;
      case SlotValue::Kind::kReal:
        out.insert_real(name, v->r);
        break;
      case SlotValue::Kind::kString:
        out.insert_string(name, v->s);
        break;
      case SlotValue::Kind::kNull:
        break;
    }
  }
}

}  // namespace erms::cep
