#include "cep/pattern.h"

namespace erms::cep {

namespace {

std::string join(const std::vector<std::string>& parts) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out += '\x1f';
    }
    out += parts[i];
  }
  return out;
}

std::string render(const classad::Value& v) {
  if (v.is_string()) {
    return v.as_string();
  }
  if (v.is_undefined()) {
    return "";
  }
  return v.to_string();
}

}  // namespace

PatternId PatternDetector::add_pattern(Pattern pattern, MatchFn on_match) {
  const PatternId id = ids_.next();
  patterns_.emplace(id, State{std::move(pattern), std::move(on_match), {}});
  return id;
}

bool PatternDetector::remove_pattern(PatternId id) { return patterns_.erase(id) > 0; }

bool PatternDetector::matches(const classad::ExprPtr& predicate, const Event& event) {
  if (!predicate) {
    return false;
  }
  const classad::Value v = event.attrs.evaluate_expr(*predicate);
  return v.is_bool() && v.as_bool();
}

std::vector<std::string> PatternDetector::key_of(const Pattern& pattern,
                                                 const Event& event) {
  std::vector<std::string> key;
  key.reserve(pattern.correlate_by.size());
  for (const std::string& attr : pattern.correlate_by) {
    key.push_back(render(event.attrs.evaluate(attr)));
  }
  return key;
}

void PatternDetector::expire(State& state, sim::SimTime now) {
  for (auto it = state.open.begin(); it != state.open.end();) {
    if (it->second.opened + state.pattern.within < now) {
      it = state.open.erase(it);
    } else {
      ++it;
    }
  }
}

void PatternDetector::push(const Event& event) {
  for (auto& [id, state] : patterns_) {
    if (!state.pattern.from.empty() && state.pattern.from != event.type) {
      continue;
    }
    expire(state, event.time);

    const std::vector<std::string> key_values = key_of(state.pattern, event);
    const std::string key = join(key_values);

    // Follower test first: an event may be both an opener and a follower
    // (e.g. every `read` extends the burst), and the open instance wins —
    // a counted follower never also refreshes the instance.
    bool consumed = false;
    const auto it = state.open.find(key);
    if (it != state.open.end() && matches(state.pattern.follower, event)) {
      consumed = true;
      Instance& inst = it->second;
      ++inst.followers;
      if (inst.followers >= state.pattern.follower_count) {
        PatternMatch match;
        match.pattern = state.pattern.name;
        match.key = key_values;
        match.opened = inst.opened;
        match.completed = event.time;
        state.open.erase(it);
        ++matches_fired_;
        if (state.on_match) {
          state.on_match(match);
        }
      }
    }
    if (!consumed && matches(state.pattern.opening, event)) {
      // Open or refresh the instance for this key.
      state.open[key] = Instance{event.time, 0};
    }
  }
}

std::size_t PatternDetector::open_instances(PatternId id) const {
  const auto it = patterns_.find(id);
  return it == patterns_.end() ? 0 : it->second.open.size();
}

}  // namespace erms::cep
