#include "cep/window.h"

namespace erms::cep {

void SlidingWindow::push(Event&& event, const EvictFn& on_evict) {
  const sim::SimTime now = event.time;
  events_.push_back(std::move(event));
  if (spec_.kind == WindowSpec::Kind::kLength) {
    while (events_.size() > spec_.count) {
      if (on_evict) {
        on_evict(events_.front());
      }
      events_.pop_front();
    }
  } else {
    evict_until(now, on_evict);
  }
}

void SlidingWindow::evict_until(sim::SimTime now, const EvictFn& on_evict) {
  if (spec_.kind != WindowSpec::Kind::kTime) {
    return;
  }
  const sim::SimTime cutoff = now - spec_.duration;
  while (!events_.empty() && events_.front().time <= cutoff) {
    if (on_evict) {
      on_evict(events_.front());
    }
    events_.pop_front();
  }
}

}  // namespace erms::cep
