#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "hdfs/cluster.h"
#include "util/ids.h"
#include "workload/swim.h"

namespace erms::mapred {

struct MrJobTag {};
using MrJobId = util::StrongId<MrJobTag>;

/// Which Hadoop scheduler to emulate (the paper evaluates ERMS under both,
/// Fig. 3).
enum class SchedulerKind { kFifo, kFair };

struct MapRedConfig {
  SchedulerKind scheduler{SchedulerKind::kFifo};
  /// Map slots per datanode (2012-era Hadoop: ~2 per core pair).
  std::uint32_t map_slots_per_node = 2;
  /// Per-task CPU time added on top of the block read.
  double compute_seconds_per_gib = 4.0;
  /// Fair-scheduler delay scheduling: how many scheduling opportunities a
  /// job may decline while waiting for a node-local slot.
  std::uint32_t locality_delay_opportunities = 3;
  /// Retry backoff when every replica holder is session-saturated.
  sim::SimDuration busy_retry_backoff = sim::millis(500);
  std::uint32_t max_read_retries = 40;
};

/// Completed-job record.
struct JobResult {
  MrJobId id;
  std::string input_path;
  sim::SimTime submitted;
  sim::SimTime started;
  sim::SimTime finished;
  std::size_t tasks{0};
  std::size_t node_local{0};
  std::size_t rack_local{0};
  std::size_t remote{0};
  std::size_t failed_tasks{0};
  std::uint64_t bytes_read{0};
  /// Sum over tasks of the time spent reading (for throughput accounting).
  double read_seconds{0.0};

  [[nodiscard]] double locality_fraction() const {
    return tasks == 0 ? 0.0
                      : static_cast<double>(node_local) / static_cast<double>(tasks);
  }
  [[nodiscard]] double duration_seconds() const { return (finished - submitted).seconds(); }
};

/// Aggregates over a finished workload (the Fig. 3 metrics).
struct WorkloadReport {
  std::size_t jobs{0};
  double mean_job_duration_s{0.0};
  /// Mean per-task read throughput (MB/s) — "Average Reading Throughput".
  double mean_read_throughput_mbps{0.0};
  /// Mean over jobs of the node-local task fraction — "Data Locality of
  /// Jobs".
  double mean_locality{0.0};
  double rack_local_fraction{0.0};
  std::size_t failed_tasks{0};
};

/// MapReduce task-scheduling simulator over the HDFS cluster: one map task
/// per input block, a fixed number of map slots per node, and FIFO or Fair
/// task assignment with delay scheduling. Reduce phases are out of scope —
/// the paper's metrics (read throughput, map locality) are map-side.
class JobRunner {
 public:
  JobRunner(hdfs::Cluster& cluster, MapRedConfig config);

  /// Submit a job reading `input_path` at the current simulation time.
  /// Returns nullopt if the file does not exist.
  std::optional<MrJobId> submit(const std::string& input_path);

  /// Schedule a whole trace's jobs at their submit times (files must exist).
  void submit_trace(const workload::Trace& trace);

  /// Completion callback (optional).
  void set_on_job_done(std::function<void(const JobResult&)> fn) {
    on_job_done_ = std::move(fn);
  }

  [[nodiscard]] const std::vector<JobResult>& results() const { return results_; }
  [[nodiscard]] std::size_t pending_jobs() const { return active_jobs_.size(); }
  [[nodiscard]] bool idle() const { return active_jobs_.empty(); }

  [[nodiscard]] WorkloadReport report() const;

 private:
  struct Task {
    hdfs::BlockId block;
    std::uint32_t retries{0};
    /// When the task was dispatched to a slot; the job's read time counts
    /// from here, so session-rejection retries (hot-spot stalls) are paid.
    sim::SimTime dispatched{};
  };
  struct ActiveJob {
    JobResult result;
    std::deque<Task> pending;
    std::size_t running{0};
    std::uint32_t locality_skips{0};
    bool started{false};
  };
  struct Slot {
    hdfs::NodeId node;
    bool busy{false};
  };

  void pump();
  /// Try to hand `slot` a task; returns true if one was assigned.
  bool assign(std::size_t slot_index);
  void run_task(std::size_t slot_index, MrJobId job_id, Task task);
  void finish_task(std::size_t slot_index, MrJobId job_id, const Task& task,
                   const hdfs::ReadOutcome& outcome);
  void maybe_finish_job(MrJobId job_id);

  /// Scheduler policy: which job should the free slot on `node` serve, and
  /// which of its tasks? nullopt = leave the slot idle for now.
  [[nodiscard]] std::optional<MrJobId> pick_job(hdfs::NodeId node);
  /// Best task of `job` for `node` (node-local > rack-local > any).
  [[nodiscard]] std::optional<std::size_t> pick_task(const ActiveJob& job,
                                                     hdfs::NodeId node,
                                                     bool require_local) const;

  hdfs::Cluster& cluster_;
  MapRedConfig config_;
  std::vector<Slot> slots_;
  std::map<MrJobId, ActiveJob> active_jobs_;  // ordered: FIFO by submit id
  std::vector<JobResult> results_;
  std::function<void(const JobResult&)> on_job_done_;
  util::IdGenerator<MrJobId> ids_{1};
  bool pump_scheduled_{false};
};

}  // namespace erms::mapred
