#include "mapred/testdfsio.h"

#include <map>
#include <algorithm>
#include <memory>

namespace erms::mapred {

namespace {

/// Sequentially read every block of `file` from `client`, retrying
/// session-rejected blocks after `backoff` (up to `max_retries` per block).
/// cb(ok, rejected_at_least_once, bytes).
void read_file_with_retry(hdfs::Cluster& cluster, hdfs::NodeId client,
                          const hdfs::FileInfo& file, sim::SimDuration backoff,
                          std::uint32_t max_retries,
                          std::function<void(bool, bool, std::uint64_t)> cb) {
  auto blocks = std::make_shared<std::vector<hdfs::BlockId>>(file.blocks);
  auto rejected = std::make_shared<bool>(false);
  auto bytes = std::make_shared<std::uint64_t>(0);
  auto next = std::make_shared<std::function<void(std::size_t, std::uint32_t)>>();
  *next = [&cluster, client, blocks, rejected, bytes, backoff, max_retries, cb,
           next](std::size_t i, std::uint32_t attempts) {
    if (i >= blocks->size()) {
      cb(true, *rejected, *bytes);
      return;
    }
    cluster.read_block(client, (*blocks)[i],
                       [&cluster, client, blocks, rejected, bytes, backoff, max_retries,
                        cb, next, i, attempts](const hdfs::ReadOutcome& out) {
                         if (out.ok) {
                           *bytes += out.bytes;
                           (*next)(i + 1, 0);
                           return;
                         }
                         if (out.error == hdfs::ReadError::kAllBusy) {
                           *rejected = true;
                           if (attempts < max_retries) {
                             cluster.simulation().schedule_after(
                                 backoff, [next, i, attempts] { (*next)(i, attempts + 1); });
                             return;
                           }
                         }
                         cb(false, *rejected, *bytes);
                       });
  };
  (*next)(0, 0);
}

std::vector<hdfs::NodeId> default_clients(hdfs::Cluster& cluster) {
  // Interleave racks so a small reader count is still rack-balanced (the
  // paper's clients were "distributed").
  std::map<std::uint32_t, std::vector<hdfs::NodeId>> by_rack;
  std::size_t serving = 0;
  for (const hdfs::NodeId n : cluster.nodes()) {
    if (cluster.is_serving(n)) {
      by_rack[cluster.rack_of(n).value()].push_back(n);
      ++serving;
    }
  }
  std::vector<hdfs::NodeId> clients;
  clients.reserve(serving);
  for (std::size_t i = 0; clients.size() < serving; ++i) {
    for (auto& [rack, nodes] : by_rack) {
      if (i < nodes.size()) {
        clients.push_back(nodes[i]);
      }
    }
  }
  return clients;
}

}  // namespace

TestDfsIoResult run_concurrent_read(hdfs::Cluster& cluster, const std::string& path,
                                    const TestDfsIoOptions& options) {
  TestDfsIoResult result;
  result.readers = options.readers;
  const hdfs::FileInfo* info = cluster.metadata().find_path(path);
  if (info == nullptr || options.readers == 0) {
    return result;
  }
  std::vector<hdfs::NodeId> clients =
      options.client_nodes.empty() ? default_clients(cluster) : options.client_nodes;
  if (clients.empty()) {
    return result;
  }

  sim::Simulation& sim = cluster.simulation();
  const sim::SimTime t0 = sim.now();
  auto done = std::make_shared<std::size_t>(0);
  struct PerReader {
    bool ok{false};
    bool rejected{false};
    double exec_s{0.0};
    std::uint64_t bytes{0};
  };
  auto readers = std::make_shared<std::vector<PerReader>>(options.readers);

  for (std::size_t i = 0; i < options.readers; ++i) {
    const hdfs::NodeId client = clients[i % clients.size()];
    read_file_with_retry(
        cluster, client, *info, options.busy_backoff, options.max_retries,
        [&sim, readers, done, i, t0](bool ok, bool rejected, std::uint64_t bytes) {
          PerReader& r = (*readers)[i];
          r.ok = ok;
          r.rejected = rejected;
          r.bytes = bytes;
          r.exec_s = (sim.now() - t0).seconds();
          ++*done;
        });
  }
  while (*done < options.readers && sim.step()) {
  }

  double sum_exec = 0.0;
  double sum_tp = 0.0;
  std::uint64_t total_bytes = 0;
  for (const PerReader& r : *readers) {
    if (!r.ok) {
      continue;
    }
    ++result.succeeded;
    result.rejected_initially += r.rejected ? 1 : 0;
    sum_exec += r.exec_s;
    result.max_execution_s = std::max(result.max_execution_s, r.exec_s);
    total_bytes += r.bytes;
    if (r.exec_s > 0.0) {
      sum_tp += static_cast<double>(r.bytes) / r.exec_s / 1e6;
    }
  }
  if (result.succeeded > 0) {
    result.mean_execution_s = sum_exec / static_cast<double>(result.succeeded);
    result.mean_reader_throughput_mbps = sum_tp / static_cast<double>(result.succeeded);
  }
  if (result.max_execution_s > 0.0) {
    result.aggregate_throughput_mbps =
        static_cast<double>(total_bytes) / result.max_execution_s / 1e6;
  }
  return result;
}

std::size_t max_concurrent_readers(hdfs::Cluster& cluster, const std::string& path,
                                   std::size_t limit,
                                   const std::vector<hdfs::NodeId>& client_nodes) {
  const hdfs::FileInfo* info = cluster.metadata().find_path(path);
  if (info == nullptr || limit == 0) {
    return 0;
  }
  std::vector<hdfs::NodeId> clients =
      client_nodes.empty() ? default_clients(cluster) : client_nodes;
  if (clients.empty()) {
    return 0;
  }
  sim::Simulation& sim = cluster.simulation();

  // probe(n): n concurrent full-file readers with no retries; true if no
  // reader is session-rejected (the paper ramped concurrent threads until
  // requests started being refused).
  auto probe = [&](std::size_t n) {
    auto done = std::make_shared<std::size_t>(0);
    auto clean = std::make_shared<bool>(true);
    for (std::size_t i = 0; i < n; ++i) {
      read_file_with_retry(cluster, clients[i % clients.size()], *info,
                           sim::millis(1), /*max_retries=*/0,
                           [done, clean](bool ok, bool rejected, std::uint64_t) {
                             *clean = *clean && ok && !rejected;
                             ++*done;
                           });
    }
    while (*done < n && sim.step()) {
    }
    return *clean;
  };

  // Binary search for the largest admitted reader count.
  std::size_t lo = 0;        // known good
  std::size_t hi = limit + 1;  // known bad (or untested bound)
  if (probe(limit)) {
    return limit;
  }
  while (lo + 1 < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (probe(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace erms::mapred
