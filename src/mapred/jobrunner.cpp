#include "mapred/jobrunner.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace erms::mapred {

namespace {
constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
}

JobRunner::JobRunner(hdfs::Cluster& cluster, MapRedConfig config)
    : cluster_(cluster), config_(config) {
  for (const hdfs::NodeId n : cluster_.nodes()) {
    for (std::uint32_t s = 0; s < config_.map_slots_per_node; ++s) {
      slots_.push_back(Slot{n, false});
    }
  }
}

std::optional<MrJobId> JobRunner::submit(const std::string& input_path) {
  const hdfs::FileInfo* info = cluster_.metadata().find_path(input_path);
  if (info == nullptr) {
    return std::nullopt;
  }
  const MrJobId id = ids_.next();
  // The job client opens its input at the namenode (one audit `open`); the
  // map tasks then read the blocks individually.
  cluster_.record_open(
      hdfs::NodeId{static_cast<std::uint32_t>(id.value() % cluster_.node_count())},
      info->id);
  ActiveJob job;
  job.result.id = id;
  job.result.input_path = input_path;
  job.result.submitted = cluster_.simulation().now();
  job.result.tasks = info->blocks.size();
  for (const hdfs::BlockId b : info->blocks) {
    job.pending.push_back(Task{b, 0});
  }
  active_jobs_.emplace(id, std::move(job));
  pump();
  return id;
}

void JobRunner::submit_trace(const workload::Trace& trace) {
  for (const workload::JobSpec& spec : trace.jobs) {
    cluster_.simulation().schedule_at(spec.submit_time,
                                      [this, path = spec.input_path] { submit(path); });
  }
}

std::optional<std::size_t> JobRunner::pick_task(const ActiveJob& job, hdfs::NodeId node,
                                                bool require_local) const {
  std::optional<std::size_t> rack_choice;
  std::optional<std::size_t> any_choice;
  for (std::size_t i = 0; i < job.pending.size(); ++i) {
    const hdfs::BlockId block = job.pending[i].block;
    bool node_local = false;
    bool rack_local = false;
    for (const hdfs::NodeId loc : cluster_.locations(block)) {
      if (!cluster_.is_serving(loc)) {
        continue;
      }
      if (loc == node) {
        node_local = true;
        break;
      }
      if (cluster_.rack_of(loc) == cluster_.rack_of(node)) {
        rack_local = true;
      }
    }
    if (node_local) {
      return i;
    }
    if (rack_local && !rack_choice) {
      rack_choice = i;
    }
    if (!any_choice) {
      any_choice = i;
    }
  }
  if (require_local) {
    return std::nullopt;
  }
  return rack_choice ? rack_choice : any_choice;
}

std::optional<MrJobId> JobRunner::pick_job(hdfs::NodeId node) {
  if (config_.scheduler == SchedulerKind::kFifo) {
    // FIFO: oldest job with pending work; no locality waiting.
    for (auto& [id, job] : active_jobs_) {
      if (!job.pending.empty()) {
        return id;
      }
    }
    return std::nullopt;
  }

  // Fair: serve jobs by fewest running tasks (min share first), with delay
  // scheduling — a job may pass up `locality_delay_opportunities` offers
  // while waiting for a node-local slot.
  std::vector<MrJobId> order;
  for (const auto& [id, job] : active_jobs_) {
    if (!job.pending.empty()) {
      order.push_back(id);
    }
  }
  std::stable_sort(order.begin(), order.end(), [this](MrJobId a, MrJobId b) {
    return active_jobs_.at(a).running < active_jobs_.at(b).running;
  });
  for (const MrJobId id : order) {
    ActiveJob& job = active_jobs_.at(id);
    if (pick_task(job, node, /*require_local=*/true)) {
      job.locality_skips = 0;
      return id;
    }
    if (job.locality_skips >= config_.locality_delay_opportunities) {
      job.locality_skips = 0;
      return id;  // waited long enough; accept non-local
    }
    ++job.locality_skips;
  }
  return std::nullopt;
}

bool JobRunner::assign(std::size_t slot_index) {
  Slot& slot = slots_[slot_index];
  assert(!slot.busy);
  if (!cluster_.is_serving(slot.node)) {
    return false;
  }
  const auto job_id = pick_job(slot.node);
  if (!job_id) {
    return false;
  }
  ActiveJob& job = active_jobs_.at(*job_id);
  const bool require_local = false;  // pick_job already applied the delay rule
  const auto task_index = pick_task(job, slot.node, require_local);
  if (!task_index) {
    return false;
  }
  Task task = job.pending[*task_index];
  task.dispatched = cluster_.simulation().now();
  job.pending.erase(job.pending.begin() + static_cast<std::ptrdiff_t>(*task_index));
  ++job.running;
  if (!job.started) {
    job.started = true;
    job.result.started = cluster_.simulation().now();
  }
  slot.busy = true;
  run_task(slot_index, *job_id, task);
  return true;
}

void JobRunner::run_task(std::size_t slot_index, MrJobId job_id, Task task) {
  const hdfs::NodeId node = slots_[slot_index].node;
  cluster_.read_block(node, task.block,
                      [this, slot_index, job_id, task](const hdfs::ReadOutcome& outcome) {
                        if (!outcome.ok && outcome.error == hdfs::ReadError::kAllBusy &&
                            task.retries < config_.max_read_retries) {
                          // Stay in the slot and retry after a backoff — the
                          // hotspot contention the paper's Fig. 3 measures.
                          Task retry = task;
                          ++retry.retries;
                          cluster_.simulation().schedule_after(
                              config_.busy_retry_backoff, [this, slot_index, job_id, retry] {
                                run_task(slot_index, job_id, retry);
                              });
                          return;
                        }
                        finish_task(slot_index, job_id, task, outcome);
                      });
}

void JobRunner::finish_task(std::size_t slot_index, MrJobId job_id, const Task& task,
                            const hdfs::ReadOutcome& outcome) {
  auto it = active_jobs_.find(job_id);
  assert(it != active_jobs_.end());
  ActiveJob& job = it->second;

  auto complete = [this, slot_index, job_id] {
    slots_[slot_index].busy = false;
    auto jit = active_jobs_.find(job_id);
    if (jit != active_jobs_.end()) {
      --jit->second.running;
      maybe_finish_job(job_id);
    }
    pump();
  };

  if (!outcome.ok) {
    ++job.result.failed_tasks;
    cluster_.simulation().schedule_after(sim::micros(0), complete);
    return;
  }

  switch (outcome.locality) {
    case hdfs::ReadLocality::kNodeLocal:
      ++job.result.node_local;
      break;
    case hdfs::ReadLocality::kRackLocal:
      ++job.result.rack_local;
      break;
    case hdfs::ReadLocality::kRemote:
      ++job.result.remote;
      break;
  }
  job.result.bytes_read += outcome.bytes;
  // Time from dispatch to last byte: transfer plus any session-rejection
  // backoffs — the contention penalty elastic replication removes.
  job.result.read_seconds +=
      (cluster_.simulation().now() - task.dispatched).seconds();

  // Map computation proportional to the input read.
  const double compute_s =
      static_cast<double>(outcome.bytes) / kGiB * config_.compute_seconds_per_gib;
  cluster_.simulation().schedule_after(sim::seconds(compute_s), complete);
}

void JobRunner::maybe_finish_job(MrJobId job_id) {
  auto it = active_jobs_.find(job_id);
  if (it == active_jobs_.end()) {
    return;
  }
  ActiveJob& job = it->second;
  if (!job.pending.empty() || job.running > 0) {
    return;
  }
  job.result.finished = cluster_.simulation().now();
  results_.push_back(job.result);
  if (on_job_done_) {
    on_job_done_(results_.back());
  }
  active_jobs_.erase(it);
}

void JobRunner::pump() {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].busy) {
      assign(i);
    }
  }
  // Delay scheduling can leave slots idle while tasks remain; poll again so
  // passed-up offers recur.
  bool pending = false;
  for (const auto& [id, job] : active_jobs_) {
    pending = pending || !job.pending.empty();
  }
  if (pending && !pump_scheduled_) {
    pump_scheduled_ = true;
    cluster_.simulation().schedule_after(sim::seconds(1.0), [this] {
      pump_scheduled_ = false;
      pump();
    });
  }
}

WorkloadReport JobRunner::report() const {
  WorkloadReport rep;
  rep.jobs = results_.size();
  if (results_.empty()) {
    return rep;
  }
  double sum_duration = 0.0;
  double sum_throughput = 0.0;
  std::size_t throughput_jobs = 0;
  double sum_locality = 0.0;
  std::size_t tasks = 0;
  std::size_t rack = 0;
  for (const JobResult& r : results_) {
    sum_duration += r.duration_seconds();
    // Job-level reading throughput: input bytes over the job's lifetime.
    // Queueing, hot-spot stalls and slow remote reads all show up here,
    // which is what Fig. 3(a)'s "average reading throughput" responds to.
    if (r.duration_seconds() > 0.0) {
      sum_throughput += static_cast<double>(r.bytes_read) / r.duration_seconds() / 1e6;
      ++throughput_jobs;
    }
    sum_locality += r.locality_fraction();
    tasks += r.tasks;
    rack += r.rack_local;
    rep.failed_tasks += r.failed_tasks;
  }
  rep.mean_job_duration_s = sum_duration / static_cast<double>(results_.size());
  rep.mean_read_throughput_mbps =
      throughput_jobs == 0 ? 0.0 : sum_throughput / static_cast<double>(throughput_jobs);
  rep.mean_locality = sum_locality / static_cast<double>(results_.size());
  rep.rack_local_fraction =
      tasks == 0 ? 0.0 : static_cast<double>(rack) / static_cast<double>(tasks);
  return rep;
}

}  // namespace erms::mapred
