#pragma once

#include <cstdint>
#include <string>

#include "hdfs/cluster.h"

namespace erms::mapred {

/// Result of one TestDFSIO-style run.
struct TestDfsIoResult {
  std::size_t readers{0};
  std::size_t succeeded{0};
  std::size_t rejected_initially{0};  // readers that needed at least one retry
  double mean_execution_s{0.0};
  double max_execution_s{0.0};
  /// Aggregate throughput: total bytes delivered / wall-clock span (MB/s).
  double aggregate_throughput_mbps{0.0};
  /// Mean per-reader throughput (MB/s).
  double mean_reader_throughput_mbps{0.0};
};

/// Options for the concurrent-read driver.
struct TestDfsIoOptions {
  std::size_t readers = 7;
  /// Retry backoff when every replica holder is at its session limit.
  sim::SimDuration busy_backoff = sim::millis(500);
  std::uint32_t max_retries = 1000;
  /// Clients are spread round-robin over these nodes; empty = all serving
  /// nodes at start time.
  std::vector<hdfs::NodeId> client_nodes;
};

/// TestDFSIO-like parallel read benchmark: `readers` clients all read `path`
/// concurrently and the driver reports mean/max execution time and
/// throughput (paper §IV.C, Figs. 6 and 9). Runs the simulation until every
/// reader finishes.
TestDfsIoResult run_concurrent_read(hdfs::Cluster& cluster, const std::string& path,
                                    const TestDfsIoOptions& options);

/// Probe the Fig. 8 metric: the largest reader count N such that all N
/// concurrent readers are admitted without any session rejection.
std::size_t max_concurrent_readers(hdfs::Cluster& cluster, const std::string& path,
                                   std::size_t limit,
                                   const std::vector<hdfs::NodeId>& client_nodes = {});

}  // namespace erms::mapred
