#pragma once

#include <functional>
#include <string>

#include "snapshot/codec.h"
#include "sim/simulation.h"
#include "sim/time.h"

namespace erms::hdfs {
class Cluster;
class FailureDetector;
}
namespace erms::core {
class ErmsManager;
}
namespace erms::fault {
class FaultInjector;
}

namespace erms::snapshot {

/// The components one snapshot covers. `sim` and `cluster` are mandatory;
/// the rest are saved/restored only when present (a present/absent flag per
/// part travels in the file, and restore requires the same shape).
struct WorldParts {
  sim::Simulation* sim{nullptr};
  hdfs::Cluster* cluster{nullptr};
  core::ErmsManager* manager{nullptr};
  fault::FaultInjector* injector{nullptr};
  hdfs::FailureDetector* detector{nullptr};
};

/// True when the world is at a snapshot-safe point: no network flows, no
/// background/recovery work, no node mid-(de)commission, no Condor job
/// queued or running, no idle poll pending, no ERMS action in flight. At
/// such a point every pending simulation event is re-armable from
/// serialised state (workload closures, remaining fault-plan events, the
/// manager's and failure detector's periodic ticks), which is what makes
/// byte-identical resume possible at all (DESIGN.md §16).
[[nodiscard]] bool quiescent(const WorldParts& parts);

/// Serialise the world to a snapshot file image. Must only be called when
/// quiescent(parts) — asserts in debug builds, and the saved state is
/// silently wrong otherwise. `user_data` is an opaque caller blob (e.g. the
/// chaos seed and plan parameters) returned verbatim by restore.
[[nodiscard]] std::string save_world_bytes(const WorldParts& parts,
                                           const std::string& user_data = {});

/// save_world_bytes + write_file. kIo on write failure.
SnapshotResult save_world(const std::string& path, const WorldParts& parts,
                          const std::string& user_data = {});

/// Restore a world from a snapshot image, two-phase: the whole image is
/// parsed and CRC-validated first (kBadMagic / kBadVersion / kCorrupt /
/// kBadSection with ZERO live mutation), then a fingerprint section is
/// checked against the live world (kStateMismatch, still no mutation), and
/// only then is component state applied. The caller must pass a freshly
/// constructed world of the same shape (same topology, config, query set)
/// and afterwards re-arm continuation events: ErmsManager::resume(),
/// FailureDetector::resume(), FaultInjector::arm_after(plan, sim->now()),
/// and any workload events later than sim->now().
SnapshotResult restore_world_bytes(const std::string& bytes, const WorldParts& parts,
                                   std::string* user_data = nullptr);

/// read_file + restore_world_bytes.
SnapshotResult restore_world(const std::string& path, const WorldParts& parts,
                             std::string* user_data = nullptr);

/// Waits for the next quiescent point at or after an arm time, then fires a
/// callback — the schedulable snapshot event. The barrier polls quiescence
/// on the simulation clock (default every 250 ms of sim time) because
/// quiescence is a global predicate, not an event; the poll cadence is part
/// of the run's event sequence, so the reference (uninterrupted) run must
/// schedule the identical barrier for its trace to stay byte-identical with
/// a snapshot/restore run.
class SnapshotBarrier {
 public:
  using Callback = std::function<void()>;

  SnapshotBarrier(sim::Simulation& sim, WorldParts parts)
      : sim_(sim), parts_(parts) {}

  /// Fire `fn` once, at the first quiescent point at or after `at`.
  void arm(sim::SimTime at, Callback fn);

  [[nodiscard]] bool fired() const { return fired_; }
  [[nodiscard]] sim::SimTime fired_at() const { return fired_at_; }

  /// Poll cadence while waiting for quiescence.
  void set_poll_interval(sim::SimDuration poll) { poll_ = poll; }

 private:
  void poll();

  sim::Simulation& sim_;
  WorldParts parts_;
  Callback fn_;
  bool fired_{false};
  sim::SimTime fired_at_{};
  sim::SimDuration poll_{sim::SimDuration{250000}};  // 250 ms
};

}  // namespace erms::snapshot
