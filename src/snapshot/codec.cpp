#include "snapshot/codec.h"

#include <array>
#include <fstream>
#include <sstream>

namespace erms::snapshot {

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kIo:
      return "io";
    case ErrorCode::kBadMagic:
      return "bad_magic";
    case ErrorCode::kBadVersion:
      return "bad_version";
    case ErrorCode::kCorrupt:
      return "corrupt";
    case ErrorCode::kBadSection:
      return "bad_section";
    case ErrorCode::kStateMismatch:
      return "state_mismatch";
  }
  return "?";
}

std::string SnapshotError::to_string() const {
  return std::string("snapshot error [") + snapshot::to_string(code) + "]: " + message;
}

namespace {
std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) != 0 ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}
}  // namespace

std::uint32_t crc32(const void* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFU;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFU] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFU;
}

Writer::Writer() {
  buf_.append(kMagic, sizeof kMagic);
  u32(kFormatVersion);
  u32(0);  // section count, patched by finish()
}

void Writer::raw(const void* data, std::size_t size) {
  buf_.append(static_cast<const char*>(data), size);
}

void Writer::begin_section(std::uint32_t tag) {
  in_section_ = true;
  u32(tag);
  section_start_ = buf_.size();
  u64(0);  // length, patched by end_section()
}

void Writer::end_section() {
  in_section_ = false;
  ++section_count_;
  const std::size_t payload_start = section_start_ + sizeof(std::uint64_t);
  const std::uint64_t length = buf_.size() - payload_start;
  std::memcpy(buf_.data() + section_start_, &length, sizeof length);
  u32(crc32(buf_.data() + payload_start, length));
}

std::string Writer::finish() {
  const std::size_t count_offset = sizeof kMagic + sizeof(std::uint32_t);
  std::memcpy(buf_.data() + count_offset, &section_count_, sizeof section_count_);
  return std::move(buf_);
}

std::string Reader::str() {
  const std::uint32_t n = u32();
  if (!ok() || size_ - pos_ < n) {
    if (ok()) {
      fail(ErrorCode::kBadSection, "string overruns payload");
    }
    return {};
  }
  std::string s(data_ + pos_, n);
  pos_ += n;
  return s;
}

void Reader::fail(ErrorCode code, std::string message) {
  if (!error_.has_value()) {
    error_ = SnapshotError{code, std::move(message)};
  }
}

SnapshotResult parse_file(const std::string& bytes, std::vector<Section>& out) {
  out.clear();
  const std::size_t header = sizeof kMagic + 2 * sizeof(std::uint32_t);
  if (bytes.size() < header) {
    return SnapshotError{ErrorCode::kBadMagic,
                         "file too short to hold a snapshot header (" +
                             std::to_string(bytes.size()) + " bytes)"};
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
    return SnapshotError{ErrorCode::kBadMagic, "magic bytes are not ERMSNAP"};
  }
  std::uint32_t version = 0;
  std::memcpy(&version, bytes.data() + sizeof kMagic, sizeof version);
  if (version != kFormatVersion) {
    return SnapshotError{ErrorCode::kBadVersion,
                         "snapshot format v" + std::to_string(version) +
                             ", this build reads v" + std::to_string(kFormatVersion)};
  }
  std::uint32_t count = 0;
  std::memcpy(&count, bytes.data() + sizeof kMagic + sizeof version, sizeof count);

  std::size_t pos = header;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t frame = sizeof(std::uint32_t) + sizeof(std::uint64_t);
    if (bytes.size() - pos < frame) {
      return SnapshotError{ErrorCode::kCorrupt,
                           "section " + std::to_string(i) + " frame truncated"};
    }
    std::uint32_t tag = 0;
    std::uint64_t length = 0;
    std::memcpy(&tag, bytes.data() + pos, sizeof tag);
    std::memcpy(&length, bytes.data() + pos + sizeof tag, sizeof length);
    pos += frame;
    if (bytes.size() - pos < length + sizeof(std::uint32_t)) {
      return SnapshotError{ErrorCode::kCorrupt,
                           "section " + std::to_string(i) + " payload truncated"};
    }
    const char* payload = bytes.data() + pos;
    pos += length;
    std::uint32_t stored_crc = 0;
    std::memcpy(&stored_crc, bytes.data() + pos, sizeof stored_crc);
    pos += sizeof stored_crc;
    const std::uint32_t actual = crc32(payload, length);
    if (actual != stored_crc) {
      return SnapshotError{ErrorCode::kCorrupt,
                           "section " + std::to_string(i) + " (tag " +
                               std::to_string(tag) + ") CRC mismatch"};
    }
    out.push_back(Section{tag, payload, static_cast<std::size_t>(length)});
  }
  if (pos != bytes.size()) {
    return SnapshotError{ErrorCode::kCorrupt,
                         std::to_string(bytes.size() - pos) +
                             " trailing bytes after the last section"};
  }
  return std::nullopt;
}

SnapshotResult write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return SnapshotError{ErrorCode::kIo, "cannot open " + path + " for writing"};
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) {
    return SnapshotError{ErrorCode::kIo, "short write to " + path};
  }
  return std::nullopt;
}

SnapshotResult read_file(const std::string& path, std::string& bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return SnapshotError{ErrorCode::kIo, "cannot open " + path};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  bytes = ss.str();
  return std::nullopt;
}

}  // namespace erms::snapshot
