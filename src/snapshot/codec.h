#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

namespace erms::snapshot {

/// Why a snapshot failed to save or load. Structured so callers (and tests)
/// can branch on the class of failure instead of parsing prose.
enum class ErrorCode {
  kIo,             // file missing / unreadable / unwritable
  kBadMagic,       // not a snapshot file at all
  kBadVersion,     // written by an incompatible format version
  kCorrupt,        // framing or CRC mismatch — bytes damaged in flight
  kBadSection,     // a section is missing, duplicated, or undecodable
  kStateMismatch,  // snapshot is valid but does not fit this live world
};

const char* to_string(ErrorCode code);

struct SnapshotError {
  ErrorCode code;
  std::string message;

  [[nodiscard]] std::string to_string() const;
};

/// nullopt = success; the whole snapshot API reports through this.
using SnapshotResult = std::optional<SnapshotError>;

/// CRC-32 (IEEE 802.3 polynomial, same as zlib) over a byte range.
std::uint32_t crc32(const void* data, std::size_t size);

// ---------------------------------------------------------------------------
// File format (all integers little-endian):
//   magic   8 bytes  "ERMSNAP\0"
//   version u32
//   count   u32                       number of sections
//   section × count:
//     tag     u32
//     length  u64                     payload bytes
//     payload length bytes
//     crc     u32                     crc32(payload)
// The header is validated field-by-field (magic, then version) before any
// CRC runs, so a version-skewed file reports kBadVersion, not kCorrupt.
// ---------------------------------------------------------------------------

inline constexpr char kMagic[8] = {'E', 'R', 'M', 'S', 'N', 'A', 'P', '\0'};
inline constexpr std::uint32_t kFormatVersion = 1;

/// Serializes one snapshot file: primitives append to a growing buffer,
/// sections frame component payloads with tag/length/CRC.
class Writer {
 public:
  Writer();

  void u8(std::uint8_t v) { raw(&v, 1); }
  void u16(std::uint16_t v) { raw(&v, sizeof v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  /// Bit-exact: the raw 64-bit pattern, so NaNs and signed zeros survive.
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }
  void raw(const void* data, std::size_t size);

  /// Open a section; every write until end_section() lands in its payload.
  /// Sections do not nest.
  void begin_section(std::uint32_t tag);
  void end_section();

  /// Patch the section count and hand over the complete file image.
  [[nodiscard]] std::string finish();

 private:
  std::string buf_;
  std::size_t section_start_{0};  // offset of current section's length field
  bool in_section_{false};
  std::uint32_t section_count_{0};
};

/// Bounds-checked reads over one section's payload. The first failed read
/// (or explicit fail()) latches an error; subsequent reads return zero
/// values so decoders can bail out without checking every call.
class Reader {
 public:
  Reader(const char* data, std::size_t size) : data_(data), size_(size) {}

  std::uint8_t u8() { return read_int<std::uint8_t>(); }
  std::uint16_t u16() { return read_int<std::uint16_t>(); }
  std::uint32_t u32() { return read_int<std::uint32_t>(); }
  std::uint64_t u64() { return read_int<std::uint64_t>(); }
  std::int64_t i64() { return read_int<std::int64_t>(); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str();

  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  [[nodiscard]] bool ok() const { return !error_.has_value(); }
  [[nodiscard]] const SnapshotError& error() const { return *error_; }

  /// Latch a decode failure (first one wins).
  void fail(ErrorCode code, std::string message);
  /// kStateMismatch unless `cond` holds; returns `cond` so decoders can
  /// bail out of loops early.
  bool require(bool cond, const std::string& what) {
    if (!cond) {
      fail(ErrorCode::kStateMismatch, what);
    }
    return cond;
  }

 private:
  template <typename T>
  T read_int() {
    if (!ok() || size_ - pos_ < sizeof(T)) {
      if (ok()) {
        fail(ErrorCode::kBadSection, "payload truncated");
      }
      return T{};
    }
    T v;
    std::memcpy(&v, data_ + pos_, sizeof v);
    pos_ += sizeof v;
    return v;
  }

  const char* data_;
  std::size_t size_;
  std::size_t pos_{0};
  std::optional<SnapshotError> error_;
};

/// One validated section of a parsed snapshot file.
struct Section {
  std::uint32_t tag;
  const char* data;
  std::size_t size;
};

/// Validate a whole file image — magic, version, framing, every section
/// CRC — without touching any live state. On success `out` maps each
/// section onto the (still caller-owned) byte buffer.
SnapshotResult parse_file(const std::string& bytes, std::vector<Section>& out);

/// Whole-file I/O helpers (kIo on failure).
SnapshotResult write_file(const std::string& path, const std::string& bytes);
SnapshotResult read_file(const std::string& path, std::string& bytes);

}  // namespace erms::snapshot
