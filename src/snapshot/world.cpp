#include "snapshot/world.h"

#include <cassert>
#include <cstdint>

#include "core/erms.h"
#include "fault/fault_plan.h"
#include "hdfs/cluster.h"
#include "hdfs/failure_detector.h"

namespace erms::snapshot {

namespace {

// Section tags. kMeta must stay first in the file so restore can reject a
// wrong-shaped world before reading anything heavier.
constexpr std::uint32_t kMeta = 1;
constexpr std::uint32_t kSimClock = 2;
constexpr std::uint32_t kCluster = 3;
constexpr std::uint32_t kManager = 4;
constexpr std::uint32_t kInjector = 5;
constexpr std::uint32_t kDetector = 6;
constexpr std::uint32_t kUserData = 7;

void write_meta(Writer& w, const WorldParts& parts) {
  const auto& cfg = parts.cluster->config();
  w.u64(cfg.seed);
  w.u64(cfg.block_size);
  w.u32(static_cast<std::uint32_t>(parts.cluster->nodes().size()));
  w.u8(parts.manager != nullptr ? 1 : 0);
  w.u8(parts.injector != nullptr ? 1 : 0);
  w.u8(parts.detector != nullptr ? 1 : 0);
  if (parts.manager != nullptr) {
    w.i64(parts.manager->config().evaluation_period.micros());
    w.u64(parts.manager->cep_engine().query_count());
    w.u64(parts.manager->standby().pool().size());
  }
}

// Validates the snapshot's fingerprint against the live world WITHOUT
// mutating it. Every mismatch is a kStateMismatch with a named field.
void check_meta(Reader& r, const WorldParts& parts) {
  const auto& cfg = parts.cluster->config();
  r.require(r.u64() == cfg.seed, "cluster seed");
  r.require(r.u64() == cfg.block_size, "cluster block size");
  r.require(r.u32() == parts.cluster->nodes().size(), "node count");
  const bool has_manager = r.u8() != 0;
  const bool has_injector = r.u8() != 0;
  const bool has_detector = r.u8() != 0;
  r.require(has_manager == (parts.manager != nullptr), "manager presence");
  r.require(has_injector == (parts.injector != nullptr), "injector presence");
  r.require(has_detector == (parts.detector != nullptr), "detector presence");
  if (!r.ok()) {
    return;
  }
  if (has_manager) {
    r.require(r.i64() == parts.manager->config().evaluation_period.micros(),
              "evaluation period");
    r.require(r.u64() == parts.manager->cep_engine().query_count(), "CEP query count");
    r.require(r.u64() == parts.manager->standby().pool().size(), "standby pool size");
  }
  r.require(r.remaining() == 0, "meta section trailing bytes");
}

const Section* find_section(const std::vector<Section>& sections, std::uint32_t tag) {
  const Section* found = nullptr;
  for (const Section& s : sections) {
    if (s.tag == tag) {
      if (found != nullptr) {
        return nullptr;  // duplicate — treat as missing, caller reports
      }
      found = &s;
    }
  }
  return found;
}

SnapshotResult section_error(Reader& r, const char* what) {
  if (r.ok() && r.remaining() != 0) {
    return SnapshotError{ErrorCode::kBadSection,
                         std::string(what) + ": trailing bytes in section"};
  }
  if (r.ok()) {
    return std::nullopt;
  }
  SnapshotError err = r.error();
  err.message = std::string(what) + ": " + err.message;
  return err;
}

}  // namespace

bool quiescent(const WorldParts& parts) {
  const hdfs::Cluster& cluster = *parts.cluster;
  if (cluster.network().active_flows() != 0 || !cluster.background_idle()) {
    return false;
  }
  for (const hdfs::NodeId n : cluster.nodes()) {
    const hdfs::NodeState s = cluster.node(n).state;
    if (s == hdfs::NodeState::kCommissioning || s == hdfs::NodeState::kDecommissioning) {
      return false;
    }
  }
  if (parts.manager != nullptr) {
    const condor::Scheduler& sched = parts.manager->scheduler();
    if (sched.queued_count() != 0 || sched.running_count() != 0 ||
        sched.idle_poll_pending() || parts.manager->actions_in_flight() != 0) {
      return false;
    }
  }
  return true;
}

std::string save_world_bytes(const WorldParts& parts, const std::string& user_data) {
  assert(parts.sim != nullptr && parts.cluster != nullptr);
  assert(quiescent(parts));

  Writer w;
  w.begin_section(kMeta);
  write_meta(w, parts);
  w.end_section();

  w.begin_section(kSimClock);
  w.i64(parts.sim->now().micros());
  w.u64(parts.sim->events_executed());
  w.end_section();

  w.begin_section(kCluster);
  parts.cluster->save_state(w);
  w.end_section();

  if (parts.manager != nullptr) {
    w.begin_section(kManager);
    parts.manager->save_state(w);
    w.end_section();
  }
  if (parts.injector != nullptr) {
    w.begin_section(kInjector);
    w.u64(parts.injector->injected());
    w.u64(parts.injector->skipped());
    w.end_section();
  }
  if (parts.detector != nullptr) {
    w.begin_section(kDetector);
    parts.detector->save_state(w);
    w.end_section();
  }

  w.begin_section(kUserData);
  w.str(user_data);
  w.end_section();

  return w.finish();
}

SnapshotResult save_world(const std::string& path, const WorldParts& parts,
                          const std::string& user_data) {
  return write_file(path, save_world_bytes(parts, user_data));
}

SnapshotResult restore_world_bytes(const std::string& bytes, const WorldParts& parts,
                                   std::string* user_data) {
  assert(parts.sim != nullptr && parts.cluster != nullptr);

  // Phase 1: validate the whole image (magic, version, framing, CRCs) and
  // the world fingerprint. Nothing live is touched until every check holds.
  std::vector<Section> sections;
  if (SnapshotResult err = parse_file(bytes, sections)) {
    return err;
  }
  const Section* meta = find_section(sections, kMeta);
  const Section* clock = find_section(sections, kSimClock);
  const Section* cluster = find_section(sections, kCluster);
  const Section* manager = find_section(sections, kManager);
  const Section* injector = find_section(sections, kInjector);
  const Section* detector = find_section(sections, kDetector);
  const Section* user = find_section(sections, kUserData);
  if (meta == nullptr || clock == nullptr || cluster == nullptr || user == nullptr) {
    return SnapshotError{ErrorCode::kBadSection, "required section missing or duplicated"};
  }
  {
    Reader r(meta->data, meta->size);
    check_meta(r, parts);
    if (SnapshotResult err = section_error(r, "meta")) {
      return err;
    }
  }
  if ((manager != nullptr) != (parts.manager != nullptr) ||
      (injector != nullptr) != (parts.injector != nullptr) ||
      (detector != nullptr) != (parts.detector != nullptr)) {
    return SnapshotError{ErrorCode::kBadSection, "section set does not match world shape"};
  }

  // Phase 2: apply. Component decoders still fingerprint-check their own
  // payloads (require → kStateMismatch) as they go; a failure here means a
  // shape mismatch the meta section could not see, and the world must be
  // considered unusable (the caller rebuilds it — cheap, it was freshly
  // constructed for the restore).
  {
    Reader r(clock->data, clock->size);
    const sim::SimTime now{r.i64()};
    const std::uint64_t events = r.u64();
    if (SnapshotResult err = section_error(r, "sim clock")) {
      return err;
    }
    parts.sim->restore_clock(now, events);
  }
  {
    Reader r(cluster->data, cluster->size);
    parts.cluster->load_state(r);
    if (SnapshotResult err = section_error(r, "cluster")) {
      return err;
    }
  }
  if (parts.manager != nullptr) {
    Reader r(manager->data, manager->size);
    parts.manager->load_state(r);
    if (SnapshotResult err = section_error(r, "manager")) {
      return err;
    }
  }
  if (parts.injector != nullptr) {
    Reader r(injector->data, injector->size);
    const std::uint64_t injected = r.u64();
    const std::uint64_t skipped = r.u64();
    if (SnapshotResult err = section_error(r, "injector")) {
      return err;
    }
    parts.injector->restore_counters(injected, skipped);
  }
  if (parts.detector != nullptr) {
    Reader r(detector->data, detector->size);
    parts.detector->load_state(r);
    if (SnapshotResult err = section_error(r, "detector")) {
      return err;
    }
  }
  {
    Reader r(user->data, user->size);
    std::string blob = r.str();
    if (SnapshotResult err = section_error(r, "user data")) {
      return err;
    }
    if (user_data != nullptr) {
      *user_data = std::move(blob);
    }
  }
  return std::nullopt;
}

SnapshotResult restore_world(const std::string& path, const WorldParts& parts,
                             std::string* user_data) {
  std::string bytes;
  if (SnapshotResult err = read_file(path, bytes)) {
    return err;
  }
  return restore_world_bytes(bytes, parts, user_data);
}

void SnapshotBarrier::arm(sim::SimTime at, Callback fn) {
  fn_ = std::move(fn);
  fired_ = false;
  sim_.schedule_at(at, [this] { poll(); });
}

void SnapshotBarrier::poll() {
  if (fired_) {
    return;
  }
  if (!quiescent(parts_)) {
    sim_.schedule_at(sim_.now() + poll_, [this] { poll(); });
    return;
  }
  fired_ = true;
  fired_at_ = sim_.now();
  fn_();
}

}  // namespace erms::snapshot
