#include "workload/swim.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <istream>
#include <numbers>
#include <ostream>
#include <unordered_map>

#include "util/strings.h"

namespace erms::workload {

std::uint64_t Trace::total_input_bytes() const {
  std::uint64_t total = 0;
  std::unordered_map<std::string, std::uint64_t> sizes;
  for (const FileSpec& f : files) {
    sizes[f.path] = f.bytes;
  }
  for (const JobSpec& j : jobs) {
    const auto it = sizes.find(j.input_path);
    if (it != sizes.end()) {
      total += it->second;
    }
  }
  return total;
}

Trace SwimTraceGenerator::generate(std::uint64_t seed) const {
  sim::Rng rng{seed};
  Trace trace;

  // Dataset: log-normal sizes clamped to [min, max].
  trace.files.reserve(config_.file_count);
  for (std::size_t i = 0; i < config_.file_count; ++i) {
    FileSpec file;
    file.path = "/data/part-" + std::to_string(i);
    const double raw = rng.lognormal(config_.size_mu, config_.size_sigma);
    file.bytes = std::clamp(static_cast<std::uint64_t>(raw), config_.min_file_bytes,
                            config_.max_file_bytes);
    trace.files.push_back(std::move(file));
  }

  // Per-epoch popularity: a Zipf rank permutation redrawn each epoch, so the
  // head of the distribution (the hot files) rotates over the run.
  const sim::ZipfDistribution zipf{config_.file_count, config_.zipf_exponent};
  const std::int64_t epoch_us = std::max<std::int64_t>(1, config_.epoch.micros());
  const std::int64_t duration_us = config_.duration.micros();
  const auto epochs = static_cast<std::size_t>((duration_us + epoch_us - 1) / epoch_us);

  std::vector<std::vector<std::size_t>> rank_to_file(epochs);
  for (std::size_t e = 0; e < epochs; ++e) {
    std::vector<std::size_t>& perm = rank_to_file[e];
    perm.resize(config_.file_count);
    for (std::size_t i = 0; i < config_.file_count; ++i) {
      perm[i] = i;
    }
    rng.shuffle(perm);
  }

  // Poisson arrivals with diurnal modulation (thinning).
  const double base_rate = 1.0 / config_.mean_interarrival_s;  // jobs per second
  const double peak_rate = base_rate * (1.0 + config_.diurnal_amplitude);
  double t = 0.0;
  const double horizon = config_.duration.seconds();
  while (true) {
    t += rng.exponential(1.0 / peak_rate);
    if (t >= horizon) {
      break;
    }
    const double phase = 2.0 * std::numbers::pi * t / (24.0 * 3600.0);
    const double rate =
        base_rate * (1.0 + config_.diurnal_amplitude * std::sin(phase));
    if (!rng.chance(rate / peak_rate)) {
      continue;  // thinned out
    }
    JobSpec job;
    job.submit_time = sim::SimTime{static_cast<std::int64_t>(t * 1e6)};
    const auto epoch = std::min<std::size_t>(
        epochs - 1, static_cast<std::size_t>(job.submit_time.micros() / epoch_us));
    const std::size_t rank = zipf.sample(rng);  // 1-based
    job.input_path = trace.files[rank_to_file[epoch][rank - 1]].path;
    trace.jobs.push_back(std::move(job));
  }
  return trace;
}

void save_trace(const Trace& trace, std::ostream& os) {
  os << "section,path,value\n";
  for (const FileSpec& f : trace.files) {
    os << "file," << f.path << ',' << f.bytes << '\n';
  }
  for (const JobSpec& j : trace.jobs) {
    os << "job," << j.input_path << ',' << j.submit_time.micros() << '\n';
  }
}

Trace load_trace(std::istream& is) {
  Trace trace;
  std::string line;
  bool first = true;
  while (std::getline(is, line)) {
    if (first) {
      first = false;  // header
      continue;
    }
    const auto fields = util::split(line, ',');
    if (fields.size() != 3) {
      continue;
    }
    if (fields[0] == "file") {
      FileSpec f;
      f.path = std::string(fields[1]);
      f.bytes = std::strtoull(std::string(fields[2]).c_str(), nullptr, 10);
      trace.files.push_back(std::move(f));
    } else if (fields[0] == "job") {
      JobSpec j;
      j.input_path = std::string(fields[1]);
      j.submit_time =
          sim::SimTime{std::strtoll(std::string(fields[2]).c_str(), nullptr, 10)};
      trace.jobs.push_back(std::move(j));
    }
  }
  return trace;
}

}  // namespace erms::workload
