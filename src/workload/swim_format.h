#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "workload/swim.h"

namespace erms::workload {

/// One record of a SWIM workload file. SWIM (the Statistical Workload
/// Injector for MapReduce the paper replays, ref. [17]) publishes its
/// Facebook traces as tab-separated lines:
///
///   job_id \t submit_time_s \t inter_job_gap_s \t map_input_bytes \t
///   shuffle_bytes \t reduce_output_bytes
///
struct SwimJobRecord {
  std::string job_id;
  double submit_time_s{0.0};
  double inter_job_gap_s{0.0};
  std::uint64_t map_input_bytes{0};
  std::uint64_t shuffle_bytes{0};
  std::uint64_t reduce_output_bytes{0};
};

/// Parse a SWIM-format trace file; malformed lines are skipped.
std::vector<SwimJobRecord> parse_swim_file(std::istream& is);
std::vector<SwimJobRecord> parse_swim_text(const std::string& text);

/// Options for converting SWIM records into a replayable Trace.
struct SwimImportOptions {
  /// SWIM replay materialises one input file per distinct input size
  /// (rounded to this granularity); jobs with equal rounded sizes share a
  /// file, which is how popularity skew appears during replay.
  std::uint64_t size_bucket_bytes = 64 * util::MiB;
  /// Clamp tiny/huge inputs to a simulable range.
  std::uint64_t min_file_bytes = 64 * util::MiB;
  std::uint64_t max_file_bytes = 8 * util::GiB;
  /// Compress the trace's wall-clock: replayed submit time = original/x.
  double time_compression = 1.0;
  std::string path_prefix = "/swim/input-";
};

/// Build a Trace (files + job submissions) from SWIM records.
Trace import_swim(const std::vector<SwimJobRecord>& records,
                  const SwimImportOptions& options = {});

}  // namespace erms::workload
