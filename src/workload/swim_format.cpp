#include "workload/swim_format.h"

#include <algorithm>
#include <cstdlib>
#include <istream>
#include <map>
#include <sstream>

#include "util/strings.h"

namespace erms::workload {

std::vector<SwimJobRecord> parse_swim_file(std::istream& is) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return parse_swim_text(buffer.str());
}

std::vector<SwimJobRecord> parse_swim_text(const std::string& text) {
  std::vector<SwimJobRecord> records;
  for (const std::string_view line : util::split(text, '\n')) {
    const auto fields = util::split(util::trim(line), '\t');
    if (fields.size() < 6) {
      continue;
    }
    SwimJobRecord rec;
    rec.job_id = std::string(fields[0]);
    char* end = nullptr;
    const std::string submit(fields[1]);
    rec.submit_time_s = std::strtod(submit.c_str(), &end);
    if (end == submit.c_str() || rec.submit_time_s < 0.0) {
      continue;
    }
    rec.inter_job_gap_s = std::strtod(std::string(fields[2]).c_str(), nullptr);
    rec.map_input_bytes = std::strtoull(std::string(fields[3]).c_str(), nullptr, 10);
    rec.shuffle_bytes = std::strtoull(std::string(fields[4]).c_str(), nullptr, 10);
    rec.reduce_output_bytes =
        std::strtoull(std::string(fields[5]).c_str(), nullptr, 10);
    if (rec.job_id.empty() || rec.map_input_bytes == 0) {
      continue;
    }
    records.push_back(std::move(rec));
  }
  return records;
}

Trace import_swim(const std::vector<SwimJobRecord>& records,
                  const SwimImportOptions& options) {
  Trace trace;
  // Distinct (rounded) input sizes become shared input files.
  std::map<std::uint64_t, std::string> file_by_size;
  for (const SwimJobRecord& rec : records) {
    const std::uint64_t clamped =
        std::clamp(rec.map_input_bytes, options.min_file_bytes, options.max_file_bytes);
    const std::uint64_t bucket = std::max<std::uint64_t>(1, options.size_bucket_bytes);
    std::uint64_t rounded = (clamped + bucket - 1) / bucket * bucket;
    rounded = std::min(rounded, options.max_file_bytes);

    auto it = file_by_size.find(rounded);
    if (it == file_by_size.end()) {
      FileSpec file;
      file.path = options.path_prefix + std::to_string(file_by_size.size());
      file.bytes = rounded;
      it = file_by_size.emplace(rounded, file.path).first;
      trace.files.push_back(std::move(file));
    }
    JobSpec job;
    const double at = rec.submit_time_s / std::max(1e-9, options.time_compression);
    job.submit_time = sim::SimTime{static_cast<std::int64_t>(at * 1e6)};
    job.input_path = it->second;
    trace.jobs.push_back(std::move(job));
  }
  std::sort(trace.jobs.begin(), trace.jobs.end(),
            [](const JobSpec& a, const JobSpec& b) { return a.submit_time < b.submit_time; });
  return trace;
}

}  // namespace erms::workload
