#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/random.h"
#include "sim/time.h"
#include "util/bytes.h"

namespace erms::workload {

/// A file in the synthetic dataset.
struct FileSpec {
  std::string path;
  std::uint64_t bytes{0};
};

/// One job in the trace: at `submit_time` a MapReduce job (or plain client)
/// reads `input_path` end to end.
struct JobSpec {
  sim::SimTime submit_time;
  std::string input_path;
};

/// A complete workload trace.
struct Trace {
  std::vector<FileSpec> files;
  std::vector<JobSpec> jobs;

  [[nodiscard]] std::uint64_t total_input_bytes() const;
};

/// Parameters of the SWIM-like synthesizer. SWIM (Statistical Workload
/// Injector for MapReduce) replays distributions fitted to a Facebook
/// production trace; the paper replays its 1-month 3000-machine trace
/// (§IV.B). We synthesize from the published shape: heavy-tailed (Zipf) file
/// popularity, log-normal input sizes, Poisson job arrivals, and per-epoch
/// popularity churn so files heat up and cool down over the run (the
/// lifecycle of §I: hot → cooled → normal → cold).
struct SwimConfig {
  std::size_t file_count = 200;
  /// Zipf exponent of file popularity (~1.1 fits the Facebook trace tail).
  double zipf_exponent = 1.1;
  /// Log-normal parameters of file sizes (median ≈ 256 MiB).
  double size_mu = 19.4;  // ln(256 MiB) ≈ 19.4
  double size_sigma = 1.0;
  std::uint64_t min_file_bytes = 64 * util::MiB;
  std::uint64_t max_file_bytes = 8 * util::GiB;
  /// Mean seconds between job submissions.
  double mean_interarrival_s = 15.0;
  sim::SimDuration duration = sim::hours(6.0);
  /// Popularity is re-drawn every epoch: the hot set rotates.
  sim::SimDuration epoch = sim::hours(1.0);
  /// Arrival-rate modulation: rate(t) = base·(1 + diurnal_amplitude·sin).
  double diurnal_amplitude = 0.6;
};

/// Deterministic trace synthesis for a given seed.
class SwimTraceGenerator {
 public:
  explicit SwimTraceGenerator(SwimConfig config) : config_(config) {}

  [[nodiscard]] Trace generate(std::uint64_t seed) const;

  [[nodiscard]] const SwimConfig& config() const { return config_; }

 private:
  SwimConfig config_;
};

/// CSV persistence: "files" section then "jobs" section. Round-trips through
/// load_trace.
void save_trace(const Trace& trace, std::ostream& os);
Trace load_trace(std::istream& is);

}  // namespace erms::workload
