#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "obs/metrics_registry.h"
#include "sim/simulation.h"
#include "util/ids.h"

namespace erms::snapshot {
class Reader;
class Writer;
}

namespace erms::net {

struct FlowTag {};
using FlowId = util::StrongId<FlowTag>;

/// Static description of the cluster fabric.
struct FabricSpec {
  struct Node {
    std::size_t rack{0};
    double nic_bw{125.0e6};   // bytes/s (GbE ≈ 125 MB/s)
    double disk_bw{80.0e6};   // bytes/s (2012-era SATA)
  };
  std::vector<Node> nodes;
  std::size_t rack_count{1};
  /// Per-rack uplink to the core switch, each direction. An oversubscribed
  /// fabric has rack_uplink_bw < sum of member NIC bandwidth.
  double rack_uplink_bw{500.0e6};
};

/// Event-driven fluid-flow network model with max-min fair bandwidth
/// sharing. Every transfer (block read, replication pipeline hop) is a flow
/// whose path claims capacity on: the source disk (optional), source NIC,
/// rack uplinks when crossing racks, destination NIC, and destination disk
/// (optional, for writes). Rates are recomputed by progressive filling each
/// time a flow starts or finishes; completions are scheduled on the
/// simulation clock.
///
/// This is what makes replica count matter in the experiments: a single
/// replica's node saturates its disk/NIC as readers pile on, while extra
/// replicas on other nodes add capacity (paper Figs. 6, 8, 9).
class NetworkModel {
 public:
  using CompletionFn = std::function<void(FlowId)>;
  /// Abort notification: the flow was torn down before the last byte arrived
  /// (endpoint died, deadline expired, or an explicit abort). Receives the
  /// bytes that did make it across so callers can account partial transfers.
  using AbortFn = std::function<void(FlowId, std::uint64_t bytes_transferred)>;

  struct FlowOptions {
    bool src_disk = true;   // transfer reads from the source disk
    bool dst_disk = false;  // transfer writes to the destination disk
    /// Per-flow rate ceiling (bytes/s); 0 = uncapped. Models HDFS's
    /// throttled balancer/re-replication streams
    /// (dfs.datanode.balance.bandwidthPerSec).
    double max_rate = 0.0;
    /// Per-flow deadline watchdog; if the flow is still active this long
    /// after starting it is aborted (on_abort fires). 0 = no deadline.
    sim::SimDuration timeout{};
    /// Fires instead of the completion callback when the flow is aborted.
    /// Flows without an abort handler are torn down silently (legacy
    /// cancel_flow semantics).
    AbortFn on_abort;
  };

  /// Everything a caller needs to account a flow that died mid-transfer.
  struct AbortedFlow {
    FlowId id;
    std::size_t src{0};
    std::size_t dst{0};
    std::uint64_t bytes_transferred{0};
    std::uint64_t total_bytes{0};
  };

  NetworkModel(sim::Simulation& simulation, FabricSpec spec);

  NetworkModel(const NetworkModel&) = delete;
  NetworkModel& operator=(const NetworkModel&) = delete;

  /// Start a transfer of `bytes` from node `src` to node `dst` (indices into
  /// the spec). src == dst models a local read (disk-only path). `on_done`
  /// fires on the simulation clock when the last byte arrives.
  FlowId start_flow(std::size_t src, std::size_t dst, std::uint64_t bytes,
                    FlowOptions options, CompletionFn on_done);

  /// Abort a flow; its completion callback never fires. No-op if already
  /// finished.
  void cancel_flow(FlowId id);

  /// Abort a flow and fire its abort handler (if any) with the bytes that
  /// made it across. No-op if already finished.
  void abort_flow(FlowId id);

  /// Tear down every flow whose source or destination is `node` — what a
  /// node crash does to its in-flight transfers. Partial bytes are charged
  /// to the abort counters and each flow's abort handler fires (after all
  /// victims are removed, so handlers may start replacement flows). Returns
  /// the aborted flows in FlowId order for deterministic accounting.
  std::vector<AbortedFlow> abort_flows_touching(std::size_t node);

  /// Scale a node's disk and NIC link capacities to `factor` × their spec
  /// values (0 < factor ≤ 1 degrades; 1 restores; 0 partitions the node —
  /// its flows stall until aborted or restored).
  void set_node_degradation(std::size_t node, double factor);

  /// Scale a rack's uplink capacities, both directions. factor as above.
  void set_rack_degradation(std::size_t rack, double factor);

  [[nodiscard]] double node_degradation(std::size_t node) const;

  /// Current rate (bytes/s) of an active flow; 0 if finished/unknown.
  [[nodiscard]] double flow_rate(FlowId id) const;

  [[nodiscard]] std::size_t active_flows() const { return flows_.size(); }
  [[nodiscard]] std::size_t node_count() const { return spec_.nodes.size(); }
  [[nodiscard]] const FabricSpec& spec() const { return spec_; }

  /// Aggregate counters for the experiment harnesses.
  [[nodiscard]] std::uint64_t total_bytes_completed() const { return bytes_completed_; }
  [[nodiscard]] std::uint64_t inter_rack_bytes() const { return inter_rack_bytes_; }
  [[nodiscard]] std::uint64_t flows_aborted() const { return flows_aborted_; }
  [[nodiscard]] std::uint64_t bytes_aborted() const { return bytes_aborted_; }

  /// Attach (nullptr detaches) a metrics registry: flow start/complete
  /// counters, transferred bytes, an active-flow gauge and a flow-duration
  /// histogram. Ids resolve once here; detached costs one null test per
  /// flow event.
  void set_metrics(obs::MetricsRegistry* metrics);

  /// Snapshot support (src/snapshot/): link capacities (degradation
  /// episodes straddle snapshots), the flow-id sequence and the aggregate
  /// counters. Flows hold closures and must be drained first — save asserts
  /// active_flows() == 0, load requires a same-spec fabric.
  void save_state(snapshot::Writer& w) const;
  void load_state(snapshot::Reader& r);

 private:
  // Link ids are indices into links_: per node disk / nic_out / nic_in, then
  // per rack uplink_out / uplink_in. `capacity` is the effective (possibly
  // degraded) value; `base` the spec value degradation factors scale.
  struct Link {
    double capacity;
    double base;
  };
  struct Flow {
    FlowId id;
    std::size_t src{0};
    std::size_t dst{0};
    std::vector<std::size_t> path;  // link indices
    double remaining;               // bytes
    double max_rate{0.0};           // 0 = uncapped
    double rate{0.0};               // bytes/s
    sim::SimTime started;
    sim::SimTime last_update;
    bool inter_rack{false};
    std::uint64_t total_bytes{0};
    CompletionFn on_done;
    AbortFn on_abort;
    sim::EventHandle completion;
    sim::EventHandle deadline;
  };

  [[nodiscard]] std::size_t disk_link(std::size_t node) const { return node * 3; }
  [[nodiscard]] std::size_t nic_out_link(std::size_t node) const { return node * 3 + 1; }
  [[nodiscard]] std::size_t nic_in_link(std::size_t node) const { return node * 3 + 2; }
  [[nodiscard]] std::size_t uplink_out_link(std::size_t rack) const {
    return spec_.nodes.size() * 3 + rack * 2;
  }
  [[nodiscard]] std::size_t uplink_in_link(std::size_t rack) const {
    return spec_.nodes.size() * 3 + rack * 2 + 1;
  }

  /// Charge progress to every flow for time elapsed since its last update.
  void advance_progress();

  /// Recompute all flow rates (progressive filling) and reschedule
  /// completion events.
  void rebalance();

  void complete_flow(FlowId id);

  /// Remove one flow, charging partial bytes to the abort counters. Returns
  /// the aborted-flow record and its (moved-out) abort handler; the caller
  /// rebalances and invokes handlers once all victims are gone.
  std::pair<AbortedFlow, AbortFn> detach_aborted(FlowId id);

  sim::Simulation& sim_;
  FabricSpec spec_;
  std::vector<Link> links_;
  std::vector<double> node_degradation_;
  /// Ordered by FlowId (= start order), not hashed: `rebalance()` subtracts
  /// link capacity and freezes flows *in iteration order*, so with float
  /// rounding the order is observable in the computed rates. A std::map
  /// makes that order part of the determinism contract on every platform
  /// instead of an accident of the hash table's bucket layout.
  std::map<FlowId, Flow> flows_;
  util::IdGenerator<FlowId> flow_ids_{1};
  std::uint64_t bytes_completed_{0};
  std::uint64_t inter_rack_bytes_{0};
  std::uint64_t flows_aborted_{0};
  std::uint64_t bytes_aborted_{0};

  struct ObsIds {
    obs::CounterId flows_started, flows_completed, flows_cancelled;
    obs::CounterId flows_aborted, bytes_aborted;
    obs::CounterId bytes_completed, inter_rack_bytes;
    obs::GaugeId active_flows;
    obs::HistogramId flow_seconds;
  };
  obs::MetricsRegistry* metrics_{nullptr};
  ObsIds obs_ids_;
};

}  // namespace erms::net
