#include "net/network.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "snapshot/codec.h"

namespace erms::net {

namespace {
// A flow is considered drained when this many bytes (or fewer) remain; the
// fluid model accumulates tiny floating-point residues.
constexpr double kEpsilonBytes = 1e-3;
}  // namespace

NetworkModel::NetworkModel(sim::Simulation& simulation, FabricSpec spec)
    : sim_(simulation), spec_(std::move(spec)) {
  if (spec_.nodes.empty()) {
    throw std::invalid_argument("NetworkModel: no nodes");
  }
  for (const auto& node : spec_.nodes) {
    if (node.rack >= spec_.rack_count) {
      throw std::invalid_argument("NetworkModel: node rack out of range");
    }
    links_.push_back(Link{node.disk_bw, node.disk_bw});
    links_.push_back(Link{node.nic_bw, node.nic_bw});
    links_.push_back(Link{node.nic_bw, node.nic_bw});
  }
  for (std::size_t r = 0; r < spec_.rack_count; ++r) {
    links_.push_back(Link{spec_.rack_uplink_bw, spec_.rack_uplink_bw});
    links_.push_back(Link{spec_.rack_uplink_bw, spec_.rack_uplink_bw});
  }
  node_degradation_.assign(spec_.nodes.size(), 1.0);
}

FlowId NetworkModel::start_flow(std::size_t src, std::size_t dst, std::uint64_t bytes,
                                FlowOptions options, CompletionFn on_done) {
  assert(src < spec_.nodes.size() && dst < spec_.nodes.size());
  const FlowId id = flow_ids_.next();

  Flow flow;
  flow.id = id;
  flow.src = src;
  flow.dst = dst;
  flow.remaining = static_cast<double>(bytes);
  flow.total_bytes = bytes;
  flow.max_rate = options.max_rate;
  flow.started = sim_.now();
  flow.last_update = sim_.now();
  flow.on_done = std::move(on_done);
  flow.on_abort = std::move(options.on_abort);
  if (options.timeout.micros() > 0) {
    flow.deadline = sim_.schedule_after(options.timeout, [this, id] { abort_flow(id); });
  }
  if (metrics_ != nullptr) {
    metrics_->add(obs_ids_.flows_started);
  }

  if (options.src_disk) {
    flow.path.push_back(disk_link(src));
  }
  if (src != dst) {
    flow.path.push_back(nic_out_link(src));
    const std::size_t src_rack = spec_.nodes[src].rack;
    const std::size_t dst_rack = spec_.nodes[dst].rack;
    if (src_rack != dst_rack) {
      flow.inter_rack = true;
      flow.path.push_back(uplink_out_link(src_rack));
      flow.path.push_back(uplink_in_link(dst_rack));
    }
    flow.path.push_back(nic_in_link(dst));
  }
  if (options.dst_disk && !(src == dst && options.src_disk)) {
    // A same-node copy with both ends on disk shares one spindle; model it as
    // a single disk-link traversal (already added above).
    flow.path.push_back(disk_link(dst));
  }
  if (flow.path.empty()) {
    // Memory-to-memory on one node: effectively instantaneous; finish on the
    // next event so callers still see asynchronous completion.
    flow.path.push_back(disk_link(src));
  }

  advance_progress();
  flows_.emplace(id, std::move(flow));
  rebalance();
  if (metrics_ != nullptr) {
    metrics_->set(obs_ids_.active_flows, static_cast<double>(flows_.size()));
  }
  return id;
}

void NetworkModel::cancel_flow(FlowId id) {
  const auto it = flows_.find(id);
  if (it == flows_.end()) {
    return;
  }
  advance_progress();
  it->second.completion.cancel();
  it->second.deadline.cancel();
  flows_.erase(it);
  rebalance();
  if (metrics_ != nullptr) {
    metrics_->add(obs_ids_.flows_cancelled);
    metrics_->set(obs_ids_.active_flows, static_cast<double>(flows_.size()));
  }
}

std::pair<NetworkModel::AbortedFlow, NetworkModel::AbortFn> NetworkModel::detach_aborted(
    FlowId id) {
  const auto it = flows_.find(id);
  Flow& flow = it->second;
  flow.completion.cancel();
  flow.deadline.cancel();
  const double done = static_cast<double>(flow.total_bytes) - std::max(0.0, flow.remaining);
  AbortedFlow info;
  info.id = id;
  info.src = flow.src;
  info.dst = flow.dst;
  info.bytes_transferred = static_cast<std::uint64_t>(std::max(0.0, done));
  info.total_bytes = flow.total_bytes;
  AbortFn on_abort = std::move(flow.on_abort);
  flows_.erase(it);
  ++flows_aborted_;
  bytes_aborted_ += info.bytes_transferred;
  if (metrics_ != nullptr) {
    metrics_->add(obs_ids_.flows_aborted);
    metrics_->add(obs_ids_.bytes_aborted, info.bytes_transferred);
  }
  return {std::move(info), std::move(on_abort)};
}

void NetworkModel::abort_flow(FlowId id) {
  if (flows_.find(id) == flows_.end()) {
    return;
  }
  advance_progress();
  auto [info, on_abort] = detach_aborted(id);
  rebalance();
  if (metrics_ != nullptr) {
    metrics_->set(obs_ids_.active_flows, static_cast<double>(flows_.size()));
  }
  if (on_abort) {
    on_abort(info.id, info.bytes_transferred);
  }
}

std::vector<NetworkModel::AbortedFlow> NetworkModel::abort_flows_touching(std::size_t node) {
  advance_progress();
  std::vector<FlowId> victims;
  for (const auto& [id, flow] : flows_) {
    if (flow.src == node || flow.dst == node) {
      victims.push_back(id);
    }
  }
  // FlowId order, not hash order: abort handlers and trace events fire in
  // the order the flows were started, which keeps chaos runs replayable.
  std::sort(victims.begin(), victims.end());
  std::vector<AbortedFlow> aborted;
  std::vector<AbortFn> handlers;
  aborted.reserve(victims.size());
  handlers.reserve(victims.size());
  for (const FlowId id : victims) {
    auto [info, on_abort] = detach_aborted(id);
    aborted.push_back(info);
    handlers.push_back(std::move(on_abort));
  }
  rebalance();
  if (metrics_ != nullptr) {
    metrics_->set(obs_ids_.active_flows, static_cast<double>(flows_.size()));
  }
  for (std::size_t i = 0; i < aborted.size(); ++i) {
    if (handlers[i]) {
      handlers[i](aborted[i].id, aborted[i].bytes_transferred);
    }
  }
  return aborted;
}

void NetworkModel::set_node_degradation(std::size_t node, double factor) {
  assert(node < spec_.nodes.size());
  factor = std::clamp(factor, 0.0, 1.0);
  node_degradation_[node] = factor;
  advance_progress();
  links_[disk_link(node)].capacity = links_[disk_link(node)].base * factor;
  links_[nic_out_link(node)].capacity = links_[nic_out_link(node)].base * factor;
  links_[nic_in_link(node)].capacity = links_[nic_in_link(node)].base * factor;
  rebalance();
}

void NetworkModel::set_rack_degradation(std::size_t rack, double factor) {
  assert(rack < spec_.rack_count);
  factor = std::clamp(factor, 0.0, 1.0);
  advance_progress();
  links_[uplink_out_link(rack)].capacity = links_[uplink_out_link(rack)].base * factor;
  links_[uplink_in_link(rack)].capacity = links_[uplink_in_link(rack)].base * factor;
  rebalance();
}

double NetworkModel::node_degradation(std::size_t node) const {
  return node < node_degradation_.size() ? node_degradation_[node] : 1.0;
}

double NetworkModel::flow_rate(FlowId id) const {
  const auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second.rate;
}

void NetworkModel::advance_progress() {
  const sim::SimTime now = sim_.now();
  for (auto& [id, flow] : flows_) {
    const double elapsed = (now - flow.last_update).seconds();
    if (elapsed > 0.0) {
      flow.remaining = std::max(0.0, flow.remaining - flow.rate * elapsed);
    }
    flow.last_update = now;
  }
}

void NetworkModel::rebalance() {
  // Progressive filling (max-min fairness): repeatedly find the most
  // constrained link, freeze its flows at the equal share, remove that
  // capacity, and continue until every flow is frozen.
  struct LinkState {
    double remaining_capacity;
    std::size_t unfrozen_flows{0};
  };
  std::vector<LinkState> state(links_.size());
  for (std::size_t i = 0; i < links_.size(); ++i) {
    state[i].remaining_capacity = links_[i].capacity;
  }
  for (auto& [id, flow] : flows_) {
    flow.rate = -1.0;  // unfrozen marker
    for (const std::size_t link : flow.path) {
      ++state[link].unfrozen_flows;
    }
  }

  std::size_t unfrozen = flows_.size();
  while (unfrozen > 0) {
    // Bottleneck link: minimum per-flow share among links with unfrozen flows.
    double min_share = std::numeric_limits<double>::infinity();
    for (const auto& link : state) {
      if (link.unfrozen_flows > 0) {
        min_share = std::min(min_share,
                             link.remaining_capacity / static_cast<double>(link.unfrozen_flows));
      }
    }
    assert(min_share < std::numeric_limits<double>::infinity());
    min_share = std::max(min_share, 0.0);

    // Rate-capped flows whose ceiling is below the fair share freeze at the
    // cap first (weighted-fairness with per-flow ceilings); the loop then
    // recomputes shares with their capacity released to the others.
    bool froze_capped = false;
    for (auto& [id, flow] : flows_) {
      if (flow.rate >= 0.0 || flow.max_rate <= 0.0 || flow.max_rate >= min_share) {
        continue;
      }
      flow.rate = flow.max_rate;
      froze_capped = true;
      --unfrozen;
      for (const std::size_t link : flow.path) {
        state[link].remaining_capacity =
            std::max(0.0, state[link].remaining_capacity - flow.max_rate);
        --state[link].unfrozen_flows;
      }
    }
    if (froze_capped) {
      continue;
    }

    // Freeze every unfrozen flow that crosses a link achieving that share.
    bool froze_any = false;
    for (auto& [id, flow] : flows_) {
      if (flow.rate >= 0.0) {
        continue;
      }
      bool bottlenecked = false;
      for (const std::size_t link : flow.path) {
        const auto& ls = state[link];
        if (ls.unfrozen_flows > 0 &&
            ls.remaining_capacity / static_cast<double>(ls.unfrozen_flows) <=
                min_share * (1.0 + 1e-12)) {
          bottlenecked = true;
          break;
        }
      }
      if (!bottlenecked) {
        continue;
      }
      flow.rate = flow.max_rate > 0.0 ? std::min(min_share, flow.max_rate) : min_share;
      froze_any = true;
      --unfrozen;
      for (const std::size_t link : flow.path) {
        state[link].remaining_capacity =
            std::max(0.0, state[link].remaining_capacity - flow.rate);
        --state[link].unfrozen_flows;
      }
    }
    assert(froze_any);
    if (!froze_any) {
      break;  // defensive: avoid an infinite loop under FP pathology
    }
  }

  // Reschedule completion events at the new rates.
  for (auto& [id, flow] : flows_) {
    flow.completion.cancel();
    const FlowId fid = id;
    if (flow.remaining <= kEpsilonBytes) {
      flow.completion = sim_.schedule_after(sim::micros(0), [this, fid] { complete_flow(fid); });
      continue;
    }
    if (flow.rate <= 0.0) {
      continue;  // fully blocked; will be rescheduled on the next rebalance
    }
    // Round the completion up to the next microsecond so the event fires at
    // or after the fluid model's drain time, never a fraction early.
    const double secs = flow.remaining / flow.rate;
    const auto micros = static_cast<std::int64_t>(std::ceil(secs * 1e6)) + 1;
    flow.completion =
        sim_.schedule_after(sim::micros(micros), [this, fid] { complete_flow(fid); });
  }
}

void NetworkModel::complete_flow(FlowId id) {
  const auto it = flows_.find(id);
  if (it == flows_.end()) {
    return;
  }
  advance_progress();
  if (it->second.remaining > kEpsilonBytes) {
    // Spurious wake-up (the flow's rate dropped since this event was
    // scheduled); recompute rates and reschedule everyone's completions.
    rebalance();
    return;
  }
  it->second.deadline.cancel();
  bytes_completed_ += it->second.total_bytes;
  if (it->second.inter_rack) {
    inter_rack_bytes_ += it->second.total_bytes;
  }
  if (metrics_ != nullptr) {
    metrics_->add(obs_ids_.flows_completed);
    metrics_->add(obs_ids_.bytes_completed, it->second.total_bytes);
    if (it->second.inter_rack) {
      metrics_->add(obs_ids_.inter_rack_bytes, it->second.total_bytes);
    }
    metrics_->observe(obs_ids_.flow_seconds, (sim_.now() - it->second.started).seconds());
  }
  CompletionFn on_done = std::move(it->second.on_done);
  flows_.erase(it);
  rebalance();
  if (metrics_ != nullptr) {
    metrics_->set(obs_ids_.active_flows, static_cast<double>(flows_.size()));
  }
  if (on_done) {
    on_done(id);
  }
}

void NetworkModel::save_state(snapshot::Writer& w) const {
  // Flows hold completion closures; the snapshot layer only saves at
  // quiescence, when none are in flight.
  assert(flows_.empty());
  w.u64(links_.size());
  for (const Link& link : links_) {
    w.f64(link.capacity);
    w.f64(link.base);
  }
  w.u64(node_degradation_.size());
  for (const double d : node_degradation_) w.f64(d);
  w.u64(flow_ids_.peek());
  w.u64(bytes_completed_);
  w.u64(inter_rack_bytes_);
  w.u64(flows_aborted_);
  w.u64(bytes_aborted_);
}

void NetworkModel::load_state(snapshot::Reader& r) {
  const std::uint64_t nlinks = r.u64();
  if (!r.require(nlinks == links_.size(), "fabric link count")) return;
  for (Link& link : links_) {
    link.capacity = r.f64();
    link.base = r.f64();
  }
  const std::uint64_t ndeg = r.u64();
  if (!r.require(ndeg == node_degradation_.size(), "fabric node count")) return;
  for (double& d : node_degradation_) d = r.f64();
  flow_ids_.reset(r.u64());
  bytes_completed_ = r.u64();
  inter_rack_bytes_ = r.u64();
  flows_aborted_ = r.u64();
  bytes_aborted_ = r.u64();
}

void NetworkModel::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  obs_ids_ = {};
  if (metrics == nullptr) {
    return;
  }
  obs_ids_.flows_started = metrics->counter("net.flows.started");
  obs_ids_.flows_completed = metrics->counter("net.flows.completed");
  obs_ids_.flows_cancelled = metrics->counter("net.flows.cancelled");
  obs_ids_.flows_aborted = metrics->counter("net.flows.aborted");
  obs_ids_.bytes_aborted = metrics->counter("net.bytes.aborted");
  obs_ids_.bytes_completed = metrics->counter("net.bytes.completed");
  obs_ids_.inter_rack_bytes = metrics->counter("net.bytes.inter_rack");
  obs_ids_.active_flows = metrics->gauge("net.flows.active");
  obs_ids_.flow_seconds = metrics->histogram("net.flow.seconds", 0.0, 120.0, 60);
}

}  // namespace erms::net
