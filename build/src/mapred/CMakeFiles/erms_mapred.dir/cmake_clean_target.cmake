file(REMOVE_RECURSE
  "liberms_mapred.a"
)
