# Empty compiler generated dependencies file for erms_mapred.
# This may be replaced when dependencies are built.
