file(REMOVE_RECURSE
  "CMakeFiles/erms_mapred.dir/jobrunner.cpp.o"
  "CMakeFiles/erms_mapred.dir/jobrunner.cpp.o.d"
  "CMakeFiles/erms_mapred.dir/testdfsio.cpp.o"
  "CMakeFiles/erms_mapred.dir/testdfsio.cpp.o.d"
  "liberms_mapred.a"
  "liberms_mapred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erms_mapred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
