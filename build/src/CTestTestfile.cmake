# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sim")
subdirs("metrics")
subdirs("ec")
subdirs("classad")
subdirs("net")
subdirs("cep")
subdirs("audit")
subdirs("hdfs")
subdirs("condor")
subdirs("judge")
subdirs("core")
subdirs("workload")
subdirs("mapred")
