# Empty compiler generated dependencies file for erms_classad.
# This may be replaced when dependencies are built.
