file(REMOVE_RECURSE
  "liberms_classad.a"
)
