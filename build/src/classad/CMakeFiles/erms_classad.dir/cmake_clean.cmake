file(REMOVE_RECURSE
  "CMakeFiles/erms_classad.dir/classad.cpp.o"
  "CMakeFiles/erms_classad.dir/classad.cpp.o.d"
  "CMakeFiles/erms_classad.dir/expr.cpp.o"
  "CMakeFiles/erms_classad.dir/expr.cpp.o.d"
  "CMakeFiles/erms_classad.dir/lexer.cpp.o"
  "CMakeFiles/erms_classad.dir/lexer.cpp.o.d"
  "CMakeFiles/erms_classad.dir/matchmaker.cpp.o"
  "CMakeFiles/erms_classad.dir/matchmaker.cpp.o.d"
  "CMakeFiles/erms_classad.dir/parser.cpp.o"
  "CMakeFiles/erms_classad.dir/parser.cpp.o.d"
  "CMakeFiles/erms_classad.dir/value.cpp.o"
  "CMakeFiles/erms_classad.dir/value.cpp.o.d"
  "liberms_classad.a"
  "liberms_classad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erms_classad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
