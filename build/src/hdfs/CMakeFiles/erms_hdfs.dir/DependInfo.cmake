
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hdfs/balancer.cpp" "src/hdfs/CMakeFiles/erms_hdfs.dir/balancer.cpp.o" "gcc" "src/hdfs/CMakeFiles/erms_hdfs.dir/balancer.cpp.o.d"
  "/root/repo/src/hdfs/block_scanner.cpp" "src/hdfs/CMakeFiles/erms_hdfs.dir/block_scanner.cpp.o" "gcc" "src/hdfs/CMakeFiles/erms_hdfs.dir/block_scanner.cpp.o.d"
  "/root/repo/src/hdfs/cluster.cpp" "src/hdfs/CMakeFiles/erms_hdfs.dir/cluster.cpp.o" "gcc" "src/hdfs/CMakeFiles/erms_hdfs.dir/cluster.cpp.o.d"
  "/root/repo/src/hdfs/default_placement.cpp" "src/hdfs/CMakeFiles/erms_hdfs.dir/default_placement.cpp.o" "gcc" "src/hdfs/CMakeFiles/erms_hdfs.dir/default_placement.cpp.o.d"
  "/root/repo/src/hdfs/failure_detector.cpp" "src/hdfs/CMakeFiles/erms_hdfs.dir/failure_detector.cpp.o" "gcc" "src/hdfs/CMakeFiles/erms_hdfs.dir/failure_detector.cpp.o.d"
  "/root/repo/src/hdfs/namespace.cpp" "src/hdfs/CMakeFiles/erms_hdfs.dir/namespace.cpp.o" "gcc" "src/hdfs/CMakeFiles/erms_hdfs.dir/namespace.cpp.o.d"
  "/root/repo/src/hdfs/topology.cpp" "src/hdfs/CMakeFiles/erms_hdfs.dir/topology.cpp.o" "gcc" "src/hdfs/CMakeFiles/erms_hdfs.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/erms_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/erms_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/erms_net.dir/DependInfo.cmake"
  "/root/repo/build/src/audit/CMakeFiles/erms_audit.dir/DependInfo.cmake"
  "/root/repo/build/src/cep/CMakeFiles/erms_cep.dir/DependInfo.cmake"
  "/root/repo/build/src/classad/CMakeFiles/erms_classad.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
