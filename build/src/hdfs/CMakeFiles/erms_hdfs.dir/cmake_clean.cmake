file(REMOVE_RECURSE
  "CMakeFiles/erms_hdfs.dir/balancer.cpp.o"
  "CMakeFiles/erms_hdfs.dir/balancer.cpp.o.d"
  "CMakeFiles/erms_hdfs.dir/block_scanner.cpp.o"
  "CMakeFiles/erms_hdfs.dir/block_scanner.cpp.o.d"
  "CMakeFiles/erms_hdfs.dir/cluster.cpp.o"
  "CMakeFiles/erms_hdfs.dir/cluster.cpp.o.d"
  "CMakeFiles/erms_hdfs.dir/default_placement.cpp.o"
  "CMakeFiles/erms_hdfs.dir/default_placement.cpp.o.d"
  "CMakeFiles/erms_hdfs.dir/failure_detector.cpp.o"
  "CMakeFiles/erms_hdfs.dir/failure_detector.cpp.o.d"
  "CMakeFiles/erms_hdfs.dir/namespace.cpp.o"
  "CMakeFiles/erms_hdfs.dir/namespace.cpp.o.d"
  "CMakeFiles/erms_hdfs.dir/topology.cpp.o"
  "CMakeFiles/erms_hdfs.dir/topology.cpp.o.d"
  "liberms_hdfs.a"
  "liberms_hdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erms_hdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
