# Empty compiler generated dependencies file for erms_hdfs.
# This may be replaced when dependencies are built.
