file(REMOVE_RECURSE
  "liberms_hdfs.a"
)
