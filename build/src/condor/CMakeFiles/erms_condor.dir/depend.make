# Empty dependencies file for erms_condor.
# This may be replaced when dependencies are built.
