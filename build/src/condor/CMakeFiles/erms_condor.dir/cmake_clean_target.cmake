file(REMOVE_RECURSE
  "liberms_condor.a"
)
