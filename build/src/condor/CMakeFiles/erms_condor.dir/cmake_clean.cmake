file(REMOVE_RECURSE
  "CMakeFiles/erms_condor.dir/scheduler.cpp.o"
  "CMakeFiles/erms_condor.dir/scheduler.cpp.o.d"
  "liberms_condor.a"
  "liberms_condor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erms_condor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
