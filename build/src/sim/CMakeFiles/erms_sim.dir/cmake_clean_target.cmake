file(REMOVE_RECURSE
  "liberms_sim.a"
)
