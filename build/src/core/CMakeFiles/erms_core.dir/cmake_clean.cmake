file(REMOVE_RECURSE
  "CMakeFiles/erms_core.dir/erms.cpp.o"
  "CMakeFiles/erms_core.dir/erms.cpp.o.d"
  "CMakeFiles/erms_core.dir/erms_placement.cpp.o"
  "CMakeFiles/erms_core.dir/erms_placement.cpp.o.d"
  "CMakeFiles/erms_core.dir/standby.cpp.o"
  "CMakeFiles/erms_core.dir/standby.cpp.o.d"
  "liberms_core.a"
  "liberms_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erms_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
