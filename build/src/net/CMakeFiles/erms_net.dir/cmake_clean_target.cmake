file(REMOVE_RECURSE
  "liberms_net.a"
)
