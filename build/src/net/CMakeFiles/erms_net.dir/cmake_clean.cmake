file(REMOVE_RECURSE
  "CMakeFiles/erms_net.dir/network.cpp.o"
  "CMakeFiles/erms_net.dir/network.cpp.o.d"
  "liberms_net.a"
  "liberms_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erms_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
