# Empty compiler generated dependencies file for erms_net.
# This may be replaced when dependencies are built.
