file(REMOVE_RECURSE
  "CMakeFiles/erms_util.dir/bytes.cpp.o"
  "CMakeFiles/erms_util.dir/bytes.cpp.o.d"
  "CMakeFiles/erms_util.dir/log.cpp.o"
  "CMakeFiles/erms_util.dir/log.cpp.o.d"
  "CMakeFiles/erms_util.dir/strings.cpp.o"
  "CMakeFiles/erms_util.dir/strings.cpp.o.d"
  "CMakeFiles/erms_util.dir/table.cpp.o"
  "CMakeFiles/erms_util.dir/table.cpp.o.d"
  "liberms_util.a"
  "liberms_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erms_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
