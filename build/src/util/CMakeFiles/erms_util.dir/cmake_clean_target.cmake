file(REMOVE_RECURSE
  "liberms_util.a"
)
