# Empty compiler generated dependencies file for erms_util.
# This may be replaced when dependencies are built.
