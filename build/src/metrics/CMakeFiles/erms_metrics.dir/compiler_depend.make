# Empty compiler generated dependencies file for erms_metrics.
# This may be replaced when dependencies are built.
