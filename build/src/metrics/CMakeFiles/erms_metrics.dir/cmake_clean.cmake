file(REMOVE_RECURSE
  "CMakeFiles/erms_metrics.dir/cdf.cpp.o"
  "CMakeFiles/erms_metrics.dir/cdf.cpp.o.d"
  "CMakeFiles/erms_metrics.dir/histogram.cpp.o"
  "CMakeFiles/erms_metrics.dir/histogram.cpp.o.d"
  "CMakeFiles/erms_metrics.dir/stats.cpp.o"
  "CMakeFiles/erms_metrics.dir/stats.cpp.o.d"
  "CMakeFiles/erms_metrics.dir/timeseries.cpp.o"
  "CMakeFiles/erms_metrics.dir/timeseries.cpp.o.d"
  "liberms_metrics.a"
  "liberms_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erms_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
