file(REMOVE_RECURSE
  "liberms_metrics.a"
)
