# Empty compiler generated dependencies file for erms_audit.
# This may be replaced when dependencies are built.
