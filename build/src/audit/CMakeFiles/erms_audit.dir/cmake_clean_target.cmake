file(REMOVE_RECURSE
  "liberms_audit.a"
)
