
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/audit/audit.cpp" "src/audit/CMakeFiles/erms_audit.dir/audit.cpp.o" "gcc" "src/audit/CMakeFiles/erms_audit.dir/audit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/erms_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/erms_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cep/CMakeFiles/erms_cep.dir/DependInfo.cmake"
  "/root/repo/build/src/classad/CMakeFiles/erms_classad.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
