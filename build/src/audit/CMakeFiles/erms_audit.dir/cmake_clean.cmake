file(REMOVE_RECURSE
  "CMakeFiles/erms_audit.dir/audit.cpp.o"
  "CMakeFiles/erms_audit.dir/audit.cpp.o.d"
  "liberms_audit.a"
  "liberms_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erms_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
