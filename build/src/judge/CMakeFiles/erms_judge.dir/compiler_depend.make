# Empty compiler generated dependencies file for erms_judge.
# This may be replaced when dependencies are built.
