file(REMOVE_RECURSE
  "liberms_judge.a"
)
