file(REMOVE_RECURSE
  "CMakeFiles/erms_judge.dir/feed.cpp.o"
  "CMakeFiles/erms_judge.dir/feed.cpp.o.d"
  "CMakeFiles/erms_judge.dir/judge.cpp.o"
  "CMakeFiles/erms_judge.dir/judge.cpp.o.d"
  "CMakeFiles/erms_judge.dir/predictor.cpp.o"
  "CMakeFiles/erms_judge.dir/predictor.cpp.o.d"
  "liberms_judge.a"
  "liberms_judge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erms_judge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
