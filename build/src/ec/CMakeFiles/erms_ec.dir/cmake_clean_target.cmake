file(REMOVE_RECURSE
  "liberms_ec.a"
)
