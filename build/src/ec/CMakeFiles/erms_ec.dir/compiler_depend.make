# Empty compiler generated dependencies file for erms_ec.
# This may be replaced when dependencies are built.
