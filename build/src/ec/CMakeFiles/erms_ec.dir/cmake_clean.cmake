file(REMOVE_RECURSE
  "CMakeFiles/erms_ec.dir/gf256.cpp.o"
  "CMakeFiles/erms_ec.dir/gf256.cpp.o.d"
  "CMakeFiles/erms_ec.dir/matrix.cpp.o"
  "CMakeFiles/erms_ec.dir/matrix.cpp.o.d"
  "CMakeFiles/erms_ec.dir/reed_solomon.cpp.o"
  "CMakeFiles/erms_ec.dir/reed_solomon.cpp.o.d"
  "CMakeFiles/erms_ec.dir/stripe_codec.cpp.o"
  "CMakeFiles/erms_ec.dir/stripe_codec.cpp.o.d"
  "liberms_ec.a"
  "liberms_ec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erms_ec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
