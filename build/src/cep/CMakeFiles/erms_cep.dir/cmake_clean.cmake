file(REMOVE_RECURSE
  "CMakeFiles/erms_cep.dir/engine.cpp.o"
  "CMakeFiles/erms_cep.dir/engine.cpp.o.d"
  "CMakeFiles/erms_cep.dir/epl_parser.cpp.o"
  "CMakeFiles/erms_cep.dir/epl_parser.cpp.o.d"
  "CMakeFiles/erms_cep.dir/pattern.cpp.o"
  "CMakeFiles/erms_cep.dir/pattern.cpp.o.d"
  "CMakeFiles/erms_cep.dir/window.cpp.o"
  "CMakeFiles/erms_cep.dir/window.cpp.o.d"
  "liberms_cep.a"
  "liberms_cep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erms_cep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
