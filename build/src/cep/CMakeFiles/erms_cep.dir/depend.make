# Empty dependencies file for erms_cep.
# This may be replaced when dependencies are built.
