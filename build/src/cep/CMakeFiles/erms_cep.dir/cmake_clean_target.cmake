file(REMOVE_RECURSE
  "liberms_cep.a"
)
