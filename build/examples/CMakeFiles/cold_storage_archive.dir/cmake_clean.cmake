file(REMOVE_RECURSE
  "CMakeFiles/cold_storage_archive.dir/cold_storage_archive.cpp.o"
  "CMakeFiles/cold_storage_archive.dir/cold_storage_archive.cpp.o.d"
  "cold_storage_archive"
  "cold_storage_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cold_storage_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
