# Empty compiler generated dependencies file for cold_storage_archive.
# This may be replaced when dependencies are built.
