# Empty compiler generated dependencies file for audit_log_analysis.
# This may be replaced when dependencies are built.
