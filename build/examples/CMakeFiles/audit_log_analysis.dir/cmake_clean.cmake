file(REMOVE_RECURSE
  "CMakeFiles/audit_log_analysis.dir/audit_log_analysis.cpp.o"
  "CMakeFiles/audit_log_analysis.dir/audit_log_analysis.cpp.o.d"
  "audit_log_analysis"
  "audit_log_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audit_log_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
