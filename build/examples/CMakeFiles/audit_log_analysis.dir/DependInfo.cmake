
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/audit_log_analysis.cpp" "examples/CMakeFiles/audit_log_analysis.dir/audit_log_analysis.cpp.o" "gcc" "examples/CMakeFiles/audit_log_analysis.dir/audit_log_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/erms_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mapred/CMakeFiles/erms_mapred.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/erms_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/ec/CMakeFiles/erms_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/erms_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/judge/CMakeFiles/erms_judge.dir/DependInfo.cmake"
  "/root/repo/build/src/condor/CMakeFiles/erms_condor.dir/DependInfo.cmake"
  "/root/repo/build/src/hdfs/CMakeFiles/erms_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/erms_net.dir/DependInfo.cmake"
  "/root/repo/build/src/audit/CMakeFiles/erms_audit.dir/DependInfo.cmake"
  "/root/repo/build/src/cep/CMakeFiles/erms_cep.dir/DependInfo.cmake"
  "/root/repo/build/src/classad/CMakeFiles/erms_classad.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/erms_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/erms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
