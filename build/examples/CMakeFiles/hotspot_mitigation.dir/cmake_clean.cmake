file(REMOVE_RECURSE
  "CMakeFiles/hotspot_mitigation.dir/hotspot_mitigation.cpp.o"
  "CMakeFiles/hotspot_mitigation.dir/hotspot_mitigation.cpp.o.d"
  "hotspot_mitigation"
  "hotspot_mitigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspot_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
