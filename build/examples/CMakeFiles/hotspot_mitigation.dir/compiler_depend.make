# Empty compiler generated dependencies file for hotspot_mitigation.
# This may be replaced when dependencies are built.
