file(REMOVE_RECURSE
  "CMakeFiles/test_judge.dir/test_judge.cpp.o"
  "CMakeFiles/test_judge.dir/test_judge.cpp.o.d"
  "test_judge"
  "test_judge.pdb"
  "test_judge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_judge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
