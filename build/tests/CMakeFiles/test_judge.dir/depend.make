# Empty dependencies file for test_judge.
# This may be replaced when dependencies are built.
