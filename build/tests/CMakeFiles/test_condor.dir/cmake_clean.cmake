file(REMOVE_RECURSE
  "CMakeFiles/test_condor.dir/test_condor.cpp.o"
  "CMakeFiles/test_condor.dir/test_condor.cpp.o.d"
  "test_condor"
  "test_condor.pdb"
  "test_condor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_condor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
