file(REMOVE_RECURSE
  "CMakeFiles/test_cep.dir/test_cep.cpp.o"
  "CMakeFiles/test_cep.dir/test_cep.cpp.o.d"
  "test_cep"
  "test_cep.pdb"
  "test_cep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
