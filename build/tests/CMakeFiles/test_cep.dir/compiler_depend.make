# Empty compiler generated dependencies file for test_cep.
# This may be replaced when dependencies are built.
