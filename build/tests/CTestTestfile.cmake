# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_ec[1]_include.cmake")
include("/root/repo/build/tests/test_classad[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_cep[1]_include.cmake")
include("/root/repo/build/tests/test_audit[1]_include.cmake")
include("/root/repo/build/tests/test_hdfs[1]_include.cmake")
include("/root/repo/build/tests/test_condor[1]_include.cmake")
include("/root/repo/build/tests/test_judge[1]_include.cmake")
include("/root/repo/build/tests/test_predictor[1]_include.cmake")
include("/root/repo/build/tests/test_balancer[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_mapred[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
