# Empty compiler generated dependencies file for fig9_active_standby.
# This may be replaced when dependencies are built.
