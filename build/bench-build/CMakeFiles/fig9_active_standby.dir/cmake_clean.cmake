file(REMOVE_RECURSE
  "../bench/fig9_active_standby"
  "../bench/fig9_active_standby.pdb"
  "CMakeFiles/fig9_active_standby.dir/fig9_active_standby.cpp.o"
  "CMakeFiles/fig9_active_standby.dir/fig9_active_standby.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_active_standby.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
