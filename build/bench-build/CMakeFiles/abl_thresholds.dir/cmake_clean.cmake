file(REMOVE_RECURSE
  "../bench/abl_thresholds"
  "../bench/abl_thresholds.pdb"
  "CMakeFiles/abl_thresholds.dir/abl_thresholds.cpp.o"
  "CMakeFiles/abl_thresholds.dir/abl_thresholds.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_thresholds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
