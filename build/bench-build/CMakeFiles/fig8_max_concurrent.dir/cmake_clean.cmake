file(REMOVE_RECURSE
  "../bench/fig8_max_concurrent"
  "../bench/fig8_max_concurrent.pdb"
  "CMakeFiles/fig8_max_concurrent.dir/fig8_max_concurrent.cpp.o"
  "CMakeFiles/fig8_max_concurrent.dir/fig8_max_concurrent.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_max_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
