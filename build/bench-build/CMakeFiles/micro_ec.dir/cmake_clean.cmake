file(REMOVE_RECURSE
  "../bench/micro_ec"
  "../bench/micro_ec.pdb"
  "CMakeFiles/micro_ec.dir/micro_ec.cpp.o"
  "CMakeFiles/micro_ec.dir/micro_ec.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
