file(REMOVE_RECURSE
  "../bench/fig7_replica_increase"
  "../bench/fig7_replica_increase.pdb"
  "CMakeFiles/fig7_replica_increase.dir/fig7_replica_increase.cpp.o"
  "CMakeFiles/fig7_replica_increase.dir/fig7_replica_increase.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_replica_increase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
