# Empty compiler generated dependencies file for fig7_replica_increase.
# This may be replaced when dependencies are built.
