file(REMOVE_RECURSE
  "../bench/abl_predictive"
  "../bench/abl_predictive.pdb"
  "CMakeFiles/abl_predictive.dir/abl_predictive.cpp.o"
  "CMakeFiles/abl_predictive.dir/abl_predictive.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_predictive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
