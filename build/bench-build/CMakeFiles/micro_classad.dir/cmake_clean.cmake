file(REMOVE_RECURSE
  "../bench/micro_classad"
  "../bench/micro_classad.pdb"
  "CMakeFiles/micro_classad.dir/micro_classad.cpp.o"
  "CMakeFiles/micro_classad.dir/micro_classad.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_classad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
