# Empty compiler generated dependencies file for micro_classad.
# This may be replaced when dependencies are built.
