file(REMOVE_RECURSE
  "../bench/abl_cep_window"
  "../bench/abl_cep_window.pdb"
  "CMakeFiles/abl_cep_window.dir/abl_cep_window.cpp.o"
  "CMakeFiles/abl_cep_window.dir/abl_cep_window.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_cep_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
