# Empty compiler generated dependencies file for abl_cep_window.
# This may be replaced when dependencies are built.
