file(REMOVE_RECURSE
  "../bench/abl_placement"
  "../bench/abl_placement.pdb"
  "CMakeFiles/abl_placement.dir/abl_placement.cpp.o"
  "CMakeFiles/abl_placement.dir/abl_placement.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
