# Empty dependencies file for micro_cep.
# This may be replaced when dependencies are built.
