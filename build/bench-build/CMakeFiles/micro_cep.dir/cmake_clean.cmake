file(REMOVE_RECURSE
  "../bench/micro_cep"
  "../bench/micro_cep.pdb"
  "CMakeFiles/micro_cep.dir/micro_cep.cpp.o"
  "CMakeFiles/micro_cep.dir/micro_cep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_cep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
