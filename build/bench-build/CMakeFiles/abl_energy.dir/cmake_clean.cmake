file(REMOVE_RECURSE
  "../bench/abl_energy"
  "../bench/abl_energy.pdb"
  "CMakeFiles/abl_energy.dir/abl_energy.cpp.o"
  "CMakeFiles/abl_energy.dir/abl_energy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
