file(REMOVE_RECURSE
  "../bench/abl_rebalance"
  "../bench/abl_rebalance.pdb"
  "CMakeFiles/abl_rebalance.dir/abl_rebalance.cpp.o"
  "CMakeFiles/abl_rebalance.dir/abl_rebalance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_rebalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
