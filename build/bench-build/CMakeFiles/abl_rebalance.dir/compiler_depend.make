# Empty compiler generated dependencies file for abl_rebalance.
# This may be replaced when dependencies are built.
