file(REMOVE_RECURSE
  "../bench/fig4_access_cdf"
  "../bench/fig4_access_cdf.pdb"
  "CMakeFiles/fig4_access_cdf.dir/fig4_access_cdf.cpp.o"
  "CMakeFiles/fig4_access_cdf.dir/fig4_access_cdf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_access_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
