# Empty dependencies file for fig5_storage_utilization.
# This may be replaced when dependencies are built.
