file(REMOVE_RECURSE
  "../bench/fig5_storage_utilization"
  "../bench/fig5_storage_utilization.pdb"
  "CMakeFiles/fig5_storage_utilization.dir/fig5_storage_utilization.cpp.o"
  "CMakeFiles/fig5_storage_utilization.dir/fig5_storage_utilization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_storage_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
