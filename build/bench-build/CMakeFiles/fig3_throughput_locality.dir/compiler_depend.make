# Empty compiler generated dependencies file for fig3_throughput_locality.
# This may be replaced when dependencies are built.
