file(REMOVE_RECURSE
  "../bench/fig3_throughput_locality"
  "../bench/fig3_throughput_locality.pdb"
  "CMakeFiles/fig3_throughput_locality.dir/fig3_throughput_locality.cpp.o"
  "CMakeFiles/fig3_throughput_locality.dir/fig3_throughput_locality.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_throughput_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
