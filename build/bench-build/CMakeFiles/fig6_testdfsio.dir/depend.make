# Empty dependencies file for fig6_testdfsio.
# This may be replaced when dependencies are built.
