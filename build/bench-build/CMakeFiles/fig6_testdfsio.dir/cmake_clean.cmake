file(REMOVE_RECURSE
  "../bench/fig6_testdfsio"
  "../bench/fig6_testdfsio.pdb"
  "CMakeFiles/fig6_testdfsio.dir/fig6_testdfsio.cpp.o"
  "CMakeFiles/fig6_testdfsio.dir/fig6_testdfsio.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_testdfsio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
