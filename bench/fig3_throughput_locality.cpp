// Fig. 3 — Reading performance and data locality of ERMS.
//
// The paper replays a SWIM-synthesized Facebook trace under the FIFO and
// Fair MapReduce schedulers, comparing vanilla Hadoop against ERMS at
// τ_M ∈ {8, 6, 4}, and reports (a) average reading throughput and (b) the
// data locality of jobs. ERMS improves throughput ~5-18% (FIFO) / 4-10%
// (Fair) and locality up to ~5x (FIFO) / 20-70% (Fair); lower τ_M (more
// aggressive replication) helps more.
#include "bench_common.h"
#include "mapred/jobrunner.h"
#include "workload/swim.h"

using namespace erms;
using bench::Testbed;

namespace {

struct RunOutcome {
  double throughput_mbps;
  double locality;
  std::uint64_t extra_replica_actions;
};

workload::Trace make_trace() {
  // A contended regime, like the paper's busy production trace: few files,
  // strong popularity skew, arrivals fast enough that jobs overlap on the
  // hot files.
  workload::SwimConfig swim;
  swim.file_count = 24;
  swim.duration = sim::hours(1.0);
  swim.epoch = sim::minutes(30.0);
  // ~0.66 jobs/s on ~0.5 GiB inputs keeps the 18 disks ~2/3 utilised — the
  // "large and busy cluster" regime the paper targets.
  swim.mean_interarrival_s = 1.5;
  swim.zipf_exponent = 1.8;
  swim.size_mu = 19.8;  // median ≈ 400 MiB
  swim.min_file_bytes = 128 * util::MiB;
  swim.max_file_bytes = 2 * util::GiB;
  return workload::SwimTraceGenerator{swim}.generate(2012);
}

RunOutcome run(mapred::SchedulerKind scheduler, double tau_M, bool with_erms,
               const workload::Trace& trace) {
  Testbed t;
  std::unique_ptr<core::ErmsManager> erms;
  if (with_erms) {
    core::ErmsConfig cfg;
    // Job-level workloads need a window spanning several job lifetimes.
    cfg.thresholds.window = sim::minutes(5.0);
    cfg.thresholds.tau_M = tau_M;
    cfg.thresholds.tau_d = tau_M / 4.0;
    cfg.thresholds.M_M = tau_M * 1.5;
    cfg.thresholds.M_m = tau_M * 0.75;
    cfg.thresholds.tau_DN = 250.0;  // ~70% of per-node read capacity per 5-min window
    cfg.evaluation_period = sim::seconds(30.0);
    // Fig. 3 isolates *elastic replication*: all 18 nodes stay active and
    // extra replicas land on active nodes (the active/standby model is
    // evaluated separately in Figs. 8/9).
    erms = std::make_unique<core::ErmsManager>(*t.cluster,
                                               std::vector<hdfs::NodeId>{}, cfg);
    erms->start();
  }
  for (const workload::FileSpec& file : trace.files) {
    t.cluster->populate_file(file.path, file.bytes);
  }
  mapred::MapRedConfig mr;
  mr.scheduler = scheduler;
  mr.compute_seconds_per_gib = 1.0;  // read-dominated tasks, as in TestDFSIO
  mapred::JobRunner runner{*t.cluster, mr};
  runner.submit_trace(trace);
  t.sim.run_until(sim::SimTime{sim::hours(2.5).micros()});

  RunOutcome out{};
  const mapred::WorkloadReport rep = runner.report();
  out.throughput_mbps = rep.mean_read_throughput_mbps;
  out.locality = rep.mean_locality;
  if (erms) {
    out.extra_replica_actions = erms->stats().hot_promotions;
    erms->stop();
  }
  return out;
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 3 — Average reading throughput and data locality (SWIM trace)",
      "ERMS beats vanilla under both schedulers; lower tau_M helps more. "
      "FIFO: +5-18% throughput, up to ~5x locality. Fair: +4-10%, +20-70%.");

  const workload::Trace trace = make_trace();
  std::printf("Workload: %zu files, %zu jobs, %s input\n", trace.files.size(),
              trace.jobs.size(), util::format_bytes(trace.total_input_bytes()).c_str());

  util::Table table({"scheduler", "config", "read throughput (MB/s)",
                     "data locality of jobs", "hot promotions"});
  for (const auto scheduler :
       {mapred::SchedulerKind::kFifo, mapred::SchedulerKind::kFair}) {
    const char* sched_name = scheduler == mapred::SchedulerKind::kFifo ? "FIFO" : "Fair";
    const RunOutcome vanilla = run(scheduler, 0.0, false, trace);
    table.add_row({sched_name, "Vanilla Hadoop", util::Table::cell(vanilla.throughput_mbps),
                   util::Table::cell(vanilla.locality, 3), "-"});
    for (const double tau : {8.0, 6.0, 4.0}) {
      const RunOutcome erms = run(scheduler, tau, true, trace);
      char label[32];
      std::snprintf(label, sizeof(label), "ERMS tau_M=%.0f", tau);
      char gain[64];
      std::snprintf(gain, sizeof(gain), "%s  (%+.1f%%)",
                    util::Table::cell(erms.throughput_mbps).c_str(),
                    100.0 * (erms.throughput_mbps / vanilla.throughput_mbps - 1.0));
      table.add_row({sched_name, label, gain, util::Table::cell(erms.locality, 3),
                     util::Table::cell(erms.extra_replica_actions)});
    }
  }
  bench::emit_table("fig3", table);
  return 0;
}
