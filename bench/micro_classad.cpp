// Microbenchmark A6 — ClassAd parsing, evaluation and matchmaking rates.
// ERMS refreshes one machine ad per datanode per evaluation tick and
// matches job ads against them; these rates bound the cluster size one
// manager can track.
#include <benchmark/benchmark.h>

#include "classad/classad.h"
#include "classad/matchmaker.h"
#include "classad/parser.h"

namespace {

using namespace erms::classad;

ClassAd machine_ad(int i) {
  ClassAd ad;
  ad.insert_int("Node", i);
  ad.insert_int("Memory", 4096 + i);
  ad.insert_int("Sessions", i % 9);
  ad.insert_int("MaxSessions", 9);
  ad.insert_string("State", i % 3 == 0 ? "standby" : "active");
  ad.insert("Requirements", parse_expr("true"));
  return ad;
}

void BM_ParseExpr(benchmark::State& state) {
  for (auto _ : state) {
    auto e = parse_expr(
        "TARGET.State == \"active\" && TARGET.Sessions < TARGET.MaxSessions && "
        "(TARGET.Memory >= 2048 || TARGET.Node < 4)");
    benchmark::DoNotOptimize(e);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ParseExpr);

void BM_EvaluateExpr(benchmark::State& state) {
  const ClassAd machine = machine_ad(5);
  ClassAd job;
  job.insert("Requirements",
             parse_expr("TARGET.State == \"active\" && TARGET.Sessions < "
                        "TARGET.MaxSessions && TARGET.Memory >= 2048"));
  for (auto _ : state) {
    const Value v = job.evaluate("Requirements", &machine);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EvaluateExpr);

void BM_BestMatch(benchmark::State& state) {
  std::vector<ClassAd> machines;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    machines.push_back(machine_ad(i));
  }
  ClassAd job;
  job.insert("Requirements",
             parse_expr("TARGET.State == \"active\" && TARGET.Sessions < 8"));
  job.insert("Rank", parse_expr("TARGET.MaxSessions - TARGET.Sessions"));
  for (auto _ : state) {
    auto match = Matchmaker::best_match(job, machines);
    benchmark::DoNotOptimize(match);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BestMatch)->Arg(18)->Arg(100)->Arg(1000);

void BM_ParseClassAd(benchmark::State& state) {
  const std::string text =
      "[ Node = 7; Rack = 1; State = \"active\"; UsedBytes = 1234567; "
      "Sessions = 3; MaxSessions = 9; StandbyPool = false; ]";
  for (auto _ : state) {
    auto ad = parse_classad(text);
    benchmark::DoNotOptimize(ad);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ParseClassAd);

}  // namespace
