// Macro-scale benchmark: how far past the paper's 19-node testbed the
// simulator's hot state now stretches. Builds a large cluster, bulk-ingests
// millions of files through the interned/sharded namespace, replays a long
// synthetic audit stream through the real feed→CEP→judge pipeline, and runs
// full Data Judge sweeps over every file — then reports ingest and replay
// throughput, peak RSS, and the sim-time/wall-time ratio as BENCH_scale.json.
//
// Knobs (environment):
//   ERMS_SCALE_NODES          datanode count           (default 10000)
//   ERMS_SCALE_FILES          files to ingest          (default 5000000)
//   ERMS_SCALE_EVENTS         audit events to replay   (default 100000000)
//   ERMS_SCALE_OUT            where to write the JSON  (default BENCH_scale.json)
//   ERMS_SCALE_SHARDS         judge CEP engine shards  (default 1)
//   ERMS_SCALE_SWEEP_THREADS  judge sweep threads      (default 1)
//   ERMS_SNAPSHOT_EVERY       save a full world snapshot every N judge sweeps
//                             (0 = off) and report snapshot size plus
//                             save/load latency in the JSON
//
// The access pattern is uniform over all files so the judge's verdicts stay
// "normal" — the bench measures metadata-plane capacity (ingest, windowed
// counting, classification sweeps), not the action pipeline, which the
// figure benches already cover at paper scale.
#include "bench_common.h"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <random>
#include <string_view>
#include <thread>

#include "snapshot/world.h"
#include "util/thread_pool.h"

namespace erms::bench {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return fallback;
  }
  return std::strtoull(v, nullptr, 10);
}

/// O(replicas) placement for bulk ingest: stride-probe from a hash of the
/// block id instead of scanning every node per replica (the default policy's
/// rack-aware scan is O(nodes) per pick — fine at 18 nodes, ruinous at 10k).
class ScalePlacement final : public hdfs::PlacementPolicy {
 public:
  explicit ScalePlacement(std::uint32_t node_count) : node_count_(node_count) {}

  [[nodiscard]] std::vector<hdfs::NodeId> choose_targets(
      const hdfs::Cluster& cluster, hdfs::BlockId block, std::size_t count,
      std::optional<hdfs::NodeId> /*writer*/, sim::Rng& /*rng*/) const override {
    std::vector<hdfs::NodeId> chosen;
    chosen.reserve(count);
    std::uint64_t h = block.value() * 0x9E3779B97F4A7C15ULL;
    h ^= h >> 29;
    // A prime stride coprime to node_count_ visits every node eventually;
    // in practice the first `count` probes land on distinct, writable nodes.
    const std::uint64_t stride = 1 + (h >> 33) % 97;
    std::uint64_t at = h % node_count_;
    for (std::size_t probe = 0; probe < count * 8 + 16 && chosen.size() < count;
         ++probe) {
      const hdfs::NodeId cand{static_cast<std::uint32_t>(at)};
      at = (at + stride) % node_count_;
      const hdfs::DataNode& dn = cluster.node(cand);
      if (dn.state != hdfs::NodeState::kActive) {
        continue;
      }
      bool dup = false;
      for (const hdfs::NodeId c : chosen) {
        dup = dup || c == cand;
      }
      if (!dup) {
        chosen.push_back(cand);
      }
    }
    return chosen;
  }

  [[nodiscard]] std::optional<hdfs::NodeId> choose_replica_to_remove(
      const hdfs::Cluster& cluster, hdfs::BlockId block,
      sim::Rng& /*rng*/) const override {
    const auto& locs = cluster.locations_view(block);
    if (locs.empty()) {
      return std::nullopt;
    }
    return locs[locs.size() - 1];
  }

  [[nodiscard]] std::string name() const override { return "scale-stride"; }

 private:
  std::uint32_t node_count_;
};

int run() {
  const std::uint64_t want_nodes = env_u64("ERMS_SCALE_NODES", 10'000);
  const std::uint64_t files = env_u64("ERMS_SCALE_FILES", 5'000'000);
  const std::uint64_t events = env_u64("ERMS_SCALE_EVENTS", 100'000'000);
  const char* out_path = std::getenv("ERMS_SCALE_OUT");
  if (out_path == nullptr || *out_path == '\0') {
    out_path = "BENCH_scale.json";
  }

  const std::size_t per_rack = want_nodes >= 40 ? 40 : want_nodes;
  const std::size_t racks = std::max<std::size_t>(1, want_nodes / per_rack);
  const std::uint32_t nodes = static_cast<std::uint32_t>(racks * per_rack);

  sim::Simulation sim;
  hdfs::Topology topo = hdfs::Topology::uniform(racks, per_rack);
  hdfs::ClusterConfig ccfg;
  ccfg.namespace_shards = std::max(1u, std::thread::hardware_concurrency());
  hdfs::Cluster cluster{sim, topo, ccfg};
  cluster.set_placement_policy(std::make_shared<ScalePlacement>(nodes));

  core::ErmsConfig ecfg;
  ecfg.thresholds.window = sim::seconds(60.0);
  // Keep the action pipeline quiet: a uniform stream at 10k events/s would
  // trip formula (4) on every node (τ_DN defaults to 19-node scale), turning
  // the bench into an action storm. Metadata-plane capacity is the question
  // here; the figure benches exercise the actions.
  ecfg.thresholds.tau_M = 1e12;
  ecfg.thresholds.M_M = 1e12;
  ecfg.thresholds.M_m = 1e11;
  ecfg.thresholds.tau_DN = 1e15;
  ecfg.manage_standby_power = false;
  ecfg.heal_capacity = false;
  ecfg.judge_shards = std::max<std::uint64_t>(1, env_u64("ERMS_SCALE_SHARDS", 1));
  ecfg.sweep_threads = env_u64("ERMS_SCALE_SWEEP_THREADS", 1);
  core::ErmsManager erms{cluster, /*standby_pool=*/{}, ecfg};

  std::printf("macro_scale nodes=%u files=%llu events=%llu namespace_shards=%zu\n",
              nodes, static_cast<unsigned long long>(files),
              static_cast<unsigned long long>(events), ccfg.namespace_shards);

  // ---- phase 1: bulk ingest ------------------------------------------------
  const auto populate_start = std::chrono::steady_clock::now();
  util::ThreadPool pool;
  constexpr std::uint64_t kBatch = 250'000;
  constexpr std::uint64_t kFileBytes = 8 * util::MiB;  // 1 block per file
  std::uint64_t created = 0;
  std::vector<hdfs::Namespace::FileSpec> specs;
  for (std::uint64_t base = 0; base < files; base += kBatch) {
    const std::uint64_t n = std::min(kBatch, files - base);
    specs.clear();
    specs.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      hdfs::Namespace::FileSpec spec;
      spec.path = "/s/f" + std::to_string(base + i);
      spec.size = kFileBytes;
      spec.block_size = kFileBytes;
      spec.replication = 3;
      specs.push_back(std::move(spec));
    }
    for (const auto& id : cluster.populate_files(specs, &pool)) {
      created += id ? 1 : 0;
    }
  }
  const double populate_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - populate_start)
          .count();
  std::printf("ingest: %llu files in %.2fs (%.0f files/s)\n",
              static_cast<unsigned long long>(created), populate_s,
              static_cast<double>(created) / std::max(populate_s, 1e-9));

  // ---- phase 2: audit replay + judge sweeps --------------------------------
  // Every event advances sim time 100µs (10k events per sim-second), so the
  // 60s window holds a bounded slice of the stream however long the replay.
  //
  // The stream is generated on a producer thread into two ping-pong buffers
  // of reused AuditEvents and ingested on this thread in whole batches
  // (feed.on_audit_batch), split only at advance/evaluate boundaries —
  // generation overlaps ingestion wherever a second hardware thread exists.
  // Per-fid path and first-block tables are precomputed once, so the replay
  // loop never touches the namespace.
  const auto replay_start = std::chrono::steady_clock::now();
  std::vector<std::string_view> path_of(created + 1);
  std::vector<std::int64_t> first_block(created + 1, -1);
  for (std::uint64_t f = 1; f <= created; ++f) {
    const hdfs::FileInfo* info =
        cluster.metadata().find(hdfs::FileId{static_cast<std::uint32_t>(f)});
    path_of[f] = info->path;
    if (!info->blocks.empty()) {
      first_block[f] = static_cast<std::int64_t>(info->blocks[0].value());
    }
  }

  constexpr std::uint64_t kGenBatch = 32'768;
  const std::uint64_t total_batches = (events + kGenBatch - 1) / kGenBatch;
  struct GenBuffer {
    std::vector<audit::AuditEvent> events;
    std::uint64_t count{0};
  };
  GenBuffer bufs[2];
  for (GenBuffer& b : bufs) {
    b.events.resize(kGenBatch);
    for (audit::AuditEvent& ev : b.events) {
      ev.allowed = true;
    }
  }
  std::mutex mu;
  std::condition_variable cv;
  std::uint64_t produced_batches = 0;
  std::uint64_t consumed_batches = 0;
  double generate_s = 0.0;  // producer-side busy time; overlaps the others

  std::thread producer([&] {
    std::mt19937_64 rng{20120919};  // the paper's CloudCom 2012 vintage
    std::int64_t t_us = 0;
    for (std::uint64_t b = 0; b < total_batches; ++b) {
      {
        std::unique_lock<std::mutex> lk(mu);
        cv.wait(lk, [&] { return produced_batches - consumed_batches < 2; });
      }
      const auto gen_start = std::chrono::steady_clock::now();
      GenBuffer& buf = bufs[b & 1];
      const std::uint64_t n = std::min(kGenBatch, events - b * kGenBatch);
      for (std::uint64_t i = 0; i < n; ++i) {
        audit::AuditEvent& e = buf.events[i];
        const auto fid = static_cast<std::uint32_t>(1 + rng() % created);
        t_us += 100;
        e.time = sim::SimTime{t_us};
        e.fid = fid;
        e.src.assign(path_of[fid]);
        if ((rng() & 3) == 0) {
          e.cmd = "open";
          e.block = -1;
          e.datanode = -1;
        } else {
          e.cmd = "read";
          e.block = first_block[fid];
          e.datanode = static_cast<std::int64_t>(fid % nodes);
        }
      }
      buf.count = n;
      generate_s +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - gen_start)
              .count();
      {
        std::lock_guard<std::mutex> lk(mu);
        ++produced_batches;
      }
      cv.notify_all();
    }
  });

  const std::uint64_t advance_every = 1'000'000;
  const std::uint64_t evaluate_every = std::max<std::uint64_t>(1, events / 8);
  const std::uint64_t snapshot_every = env_u64("ERMS_SNAPSHOT_EVERY", 0);
  const snapshot::WorldParts parts{&sim, &cluster, &erms, nullptr, nullptr};
  std::string snapshot_bytes;
  std::uint64_t snapshots_taken = 0;
  double snapshot_save_s = 0.0;
  std::uint64_t sweeps = 0;
  std::uint64_t consumed = 0;  // events ingested so far; sim time = 100µs each
  double ingest_s = 0.0;
  double advance_s = 0.0;
  double sweep_s = 0.0;
  judge::AccessStatsFeed& feed = erms.feed();
  for (std::uint64_t b = 0; b < total_batches; ++b) {
    {
      std::unique_lock<std::mutex> lk(mu);
      cv.wait(lk, [&] { return produced_batches > consumed_batches; });
    }
    const GenBuffer& buf = bufs[b & 1];
    std::uint64_t off = 0;
    while (off < buf.count) {
      // Split the batch at the next advance/evaluate boundary so the window
      // and sweep cadence match the per-event replay exactly.
      const std::uint64_t to_advance = advance_every - (consumed % advance_every);
      const std::uint64_t to_evaluate = evaluate_every - (consumed % evaluate_every);
      const std::uint64_t chunk =
          std::min({buf.count - off, to_advance, to_evaluate});
      const auto ingest_start = std::chrono::steady_clock::now();
      feed.on_audit_batch(buf.events.data() + off, chunk);
      ingest_s += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                ingest_start)
                      .count();
      off += chunk;
      consumed += chunk;
      const auto t_now = sim::SimTime{static_cast<std::int64_t>(consumed) * 100};
      if (consumed % advance_every == 0) {
        const auto t0 = std::chrono::steady_clock::now();
        feed.advance_to(t_now);
        advance_s +=
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      }
      if (consumed % evaluate_every == 0) {
        const auto t0 = std::chrono::steady_clock::now();
        sim.run_until(t_now);
        erms.evaluate();
        ++sweeps;
        sweep_s +=
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
        if (snapshot_every > 0 && sweeps % snapshot_every == 0) {
          // The sweep boundary is a quiescent point by construction: no
          // flows, no jobs, the sim drained to t_now.
          const auto s0 = std::chrono::steady_clock::now();
          snapshot_bytes = snapshot::save_world_bytes(parts);
          snapshot_save_s += std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - s0)
                                 .count();
          ++snapshots_taken;
        }
      }
    }
    {
      std::lock_guard<std::mutex> lk(mu);
      ++consumed_batches;
    }
    cv.notify_all();
  }
  producer.join();
  const std::int64_t t_us = static_cast<std::int64_t>(consumed) * 100;
  const double replay_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - replay_start)
          .count();
  const double sim_s = static_cast<double>(t_us) / 1e6;
  const double events_per_s = static_cast<double>(events) / std::max(replay_s, 1e-9);
  const std::uint64_t rss = peak_rss_bytes();

  std::printf(
      "replay: %llu events in %.2fs (%.0f events/s), %llu judge sweeps over %llu "
      "files\n",
      static_cast<unsigned long long>(events), replay_s, events_per_s,
      static_cast<unsigned long long>(sweeps),
      static_cast<unsigned long long>(created));
  std::printf(
      "phases: generate %.2fs (overlapped) | ingest %.2fs | advance %.2fs | sweep "
      "%.2fs\n",
      generate_s, ingest_s, advance_s, sweep_s);
  std::printf("sim %.1fs / wall %.2fs = %.2fx realtime, peak RSS %.2f GiB\n", sim_s,
              replay_s, sim_s / std::max(replay_s, 1e-9),
              static_cast<double>(rss) / static_cast<double>(util::GiB));
  std::printf("cluster: %llu recovery retries, %llu abandoned, %llu blocks lost\n",
              static_cast<unsigned long long>(cluster.recovery_retries()),
              static_cast<unsigned long long>(cluster.recoveries_abandoned()),
              static_cast<unsigned long long>(cluster.blocks_lost()));

  double snapshot_load_s = 0.0;
  if (snapshots_taken > 0) {
    // Restore the last snapshot into a freshly built world of the same
    // shape and time it — the cost a restarted process would pay.
    sim::Simulation sim2;
    hdfs::Topology topo2 = hdfs::Topology::uniform(racks, per_rack);
    hdfs::Cluster cluster2{sim2, topo2, ccfg};
    cluster2.set_placement_policy(std::make_shared<ScalePlacement>(nodes));
    core::ErmsManager erms2{cluster2, /*standby_pool=*/{}, ecfg};
    const snapshot::WorldParts parts2{&sim2, &cluster2, &erms2, nullptr, nullptr};
    const auto l0 = std::chrono::steady_clock::now();
    const snapshot::SnapshotResult err =
        snapshot::restore_world_bytes(snapshot_bytes, parts2);
    snapshot_load_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - l0).count();
    if (err) {
      std::fprintf(stderr, "error: snapshot does not restore: %s\n",
                   err->to_string().c_str());
      return 1;
    }
    std::printf(
        "snapshots: %llu taken (every %llu sweeps), %zu bytes, save mean %.1fms, "
        "load %.1fms\n",
        static_cast<unsigned long long>(snapshots_taken),
        static_cast<unsigned long long>(snapshot_every), snapshot_bytes.size(),
        1e3 * snapshot_save_s / static_cast<double>(snapshots_taken),
        1e3 * snapshot_load_s);
  }

  std::ofstream out{out_path};
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path);
    return 1;
  }
  out << "{\n"
      << "  \"nodes\": " << nodes << ",\n"
      << "  \"files\": " << created << ",\n"
      << "  \"events\": " << events << ",\n"
      << "  \"namespace_shards\": " << ccfg.namespace_shards << ",\n"
      << "  \"populate_seconds\": " << populate_s << ",\n"
      << "  \"files_per_second\": "
      << static_cast<double>(created) / std::max(populate_s, 1e-9) << ",\n"
      << "  \"replay_seconds\": " << replay_s << ",\n"
      << "  \"events_per_second\": " << events_per_s << ",\n"
      << "  \"phase_generate_seconds\": " << generate_s << ",\n"
      << "  \"phase_ingest_seconds\": " << ingest_s << ",\n"
      << "  \"phase_advance_seconds\": " << advance_s << ",\n"
      << "  \"phase_sweep_seconds\": " << sweep_s << ",\n"
      << "  \"sim_seconds\": " << sim_s << ",\n"
      << "  \"sim_over_wall\": " << sim_s / std::max(replay_s, 1e-9) << ",\n"
      << "  \"judge_sweeps\": " << sweeps << ",\n"
      << "  \"snapshot_every\": " << snapshot_every << ",\n"
      << "  \"snapshots_taken\": " << snapshots_taken << ",\n"
      << "  \"snapshot_bytes\": " << snapshot_bytes.size() << ",\n"
      << "  \"snapshot_save_seconds\": "
      << (snapshots_taken > 0 ? snapshot_save_s / static_cast<double>(snapshots_taken)
                              : 0.0)
      << ",\n"
      << "  \"snapshot_load_seconds\": " << snapshot_load_s << ",\n"
      << "  \"peak_rss_bytes\": " << rss << ",\n"
      << "  \"peak_rss_per_file\": "
      << (created > 0 ? static_cast<double>(rss) / static_cast<double>(created) : 0.0)
      << "\n"
      << "}\n";
  std::printf("(json written to %s)\n", out_path);
  return 0;
}

}  // namespace
}  // namespace erms::bench

int main() { return erms::bench::run(); }
