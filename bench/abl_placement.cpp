// Ablation A1 — what does Algorithm 1 placement buy over the stock
// rack-aware policy?
//
// Two claims from §III: (1) deleting extra replicas from standby nodes means
// no re-balancing and no churn on active nodes; (2) putting parities on the
// active node with the fewest blocks of the same file preserves
// recoverability under node loss.
#include <set>

#include "bench_common.h"
#include "core/erms_placement.h"
#include "core/standby.h"

using namespace erms;
using bench::Testbed;

namespace {

struct CycleStats {
  std::uint64_t inter_rack_bytes;
  std::size_t active_block_churn;  // blocks that moved on non-pool nodes
};

/// Hot cycle: 3 -> 8 -> 3 replicas on a 512 MiB file; measure traffic and
/// how much the active nodes' block sets changed.
CycleStats hot_cycle(bool use_erms_policy) {
  Testbed t;
  const auto pool = t.standby_pool();
  std::shared_ptr<core::ErmsPlacementPolicy> erms_policy;
  std::unique_ptr<core::StandbyManager> standby;
  if (use_erms_policy) {
    erms_policy = std::make_shared<core::ErmsPlacementPolicy>(
        std::set<hdfs::NodeId>(pool.begin(), pool.end()), 3);
    t.cluster->set_placement_policy(erms_policy);
    standby = std::make_unique<core::StandbyManager>(*t.cluster, pool);
    standby->ensure_commissioned(pool.size());
    t.sim.run();
  }
  const auto file = t.cluster->populate_file("/f", 512 * util::MiB, 3);

  auto snapshot = [&] {
    std::vector<std::set<hdfs::BlockId>> blocks;
    for (const hdfs::NodeId n : t.active_set()) {  // the always-active nodes
      const auto& set = t.cluster->node(n).blocks;
      blocks.emplace_back(set.begin(), set.end());
    }
    return blocks;
  };
  const auto before = snapshot();

  t.cluster->change_replication(*file, 8, hdfs::Cluster::IncreaseMode::kDirect, nullptr);
  t.sim.run();
  t.cluster->change_replication(*file, 3, hdfs::Cluster::IncreaseMode::kDirect, nullptr);
  t.sim.run();

  const auto after = snapshot();
  CycleStats stats{};
  stats.inter_rack_bytes = t.cluster->network().inter_rack_bytes();
  for (std::size_t i = 0; i < before.size(); ++i) {
    std::set<hdfs::BlockId> diff;
    std::set_symmetric_difference(before[i].begin(), before[i].end(), after[i].begin(),
                                  after[i].end(), std::inserter(diff, diff.begin()));
    stats.active_block_churn += diff.size();
  }
  return stats;
}

/// Parity survivability: encode an 8-block file with m=4 parities, then fail
/// a 4-node burst at each cluster position (failure bursts cluster in racks,
/// per the Ford et al. analysis the paper cites). A 4-node burst can only
/// defeat RS(8,4) when some node holds two or more of the stripe's shards —
/// exactly what Algorithm 1's "fewest blocks of the same file" rule avoids.
std::size_t parity_loss_scenarios(bool use_erms_policy, std::uint64_t seed) {
  std::size_t fatal = 0;
  for (std::uint32_t victim = 0; victim < bench::kNodes; ++victim) {
    hdfs::ClusterConfig cfg;
    cfg.seed = seed;
    Testbed t{cfg};
    if (use_erms_policy) {
      t.cluster->set_placement_policy(std::make_shared<core::ErmsPlacementPolicy>(
          std::set<hdfs::NodeId>{}, 3));
    }
    const auto file = t.cluster->populate_file("/f", 512 * util::MiB, 3);
    t.cluster->encode_file(*file, 4, nullptr);
    t.sim.run();
    for (std::uint32_t k = 0; k < 4; ++k) {
      t.cluster->fail_node(
          hdfs::NodeId{static_cast<std::uint32_t>((victim + k) % bench::kNodes)});
    }
    if (!t.cluster->file_available(*file)) {
      ++fatal;
    }
  }
  return fatal;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation A1 — ERMS placement (Algorithm 1) vs default rack-aware",
      "Standby-first placement avoids active-node churn on cool-down; "
      "parity anti-affinity preserves recoverability.");

  const CycleStats default_cycle = hot_cycle(false);
  const CycleStats erms_cycle = hot_cycle(true);
  util::Table cycle({"policy", "inter-rack bytes (hot cycle)",
                     "active-node block churn"});
  cycle.add_row({"hdfs-default", util::format_bytes(default_cycle.inter_rack_bytes),
                 util::Table::cell(std::uint64_t{default_cycle.active_block_churn})});
  cycle.add_row({"erms-algorithm1", util::format_bytes(erms_cycle.inter_rack_bytes),
                 util::Table::cell(std::uint64_t{erms_cycle.active_block_churn})});
  bench::emit_table("abl_placement", cycle);
  std::printf("\nERMS expectation: zero active-node churn — extra replicas live and die "
              "on the standby pool.\n");

  std::size_t default_fatal = 0;
  std::size_t erms_fatal = 0;
  constexpr int kSeeds = 10;
  for (int seed = 0; seed < kSeeds; ++seed) {
    default_fatal += parity_loss_scenarios(false, 100 + static_cast<std::uint64_t>(seed));
    erms_fatal += parity_loss_scenarios(true, 100 + static_cast<std::uint64_t>(seed));
  }
  std::printf("\nFour-node burst sweep after RS(8,4) encoding (%zu scenarios):\n",
              static_cast<std::size_t>(bench::kNodes) * kSeeds);
  std::printf("  unrecoverable with hdfs-default parity placement: %zu\n", default_fatal);
  std::printf("  unrecoverable with erms parity placement:         %zu\n", erms_fatal);
  return 0;
}
