// Fig. 4 — Cumulative distribution function of data accesses over time.
//
// The paper characterizes its replayed trace: the CDF of accesses against
// time is front-loaded/heavy-tailed — popularity spikes when data is fresh
// and decays. We reproduce the shape from the SWIM-like generator and also
// report the per-file popularity skew that drives ERMS.
#include <algorithm>
#include <map>

#include "bench_common.h"
#include "metrics/cdf.h"
#include "workload/swim.h"

using namespace erms;

int main() {
  bench::print_header("Fig. 4 — CDF of data accesses over the trace",
                      "Accesses are heavy-tailed; a small set of hot files absorbs "
                      "most reads, and access mass shifts over time with churn.");

  workload::SwimConfig swim;
  swim.file_count = 200;
  swim.duration = sim::hours(6.0);
  swim.epoch = sim::hours(1.0);
  swim.mean_interarrival_s = 4.0;
  const workload::Trace trace = workload::SwimTraceGenerator{swim}.generate(424242);
  std::printf("Trace: %zu jobs over %.1f h across %zu files\n", trace.jobs.size(),
              swim.duration.seconds() / 3600.0, trace.files.size());

  // CDF of access times (the figure's x-axis is hours).
  metrics::CdfBuilder cdf;
  for (const workload::JobSpec& job : trace.jobs) {
    cdf.add(job.submit_time.hours());
  }
  util::Table time_table({"time (h)", "CDF of accesses"});
  for (const auto& point : cdf.build_uniform(13)) {
    time_table.add_row({util::Table::cell(point.x, 1), util::Table::cell(point.p, 3)});
  }
  bench::emit_table("fig4_cdf", time_table);

  // Popularity skew: what fraction of accesses hit the top files.
  std::map<std::string, std::size_t> counts;
  for (const workload::JobSpec& job : trace.jobs) {
    ++counts[job.input_path];
  }
  std::vector<std::size_t> sorted;
  for (const auto& [path, n] : counts) {
    sorted.push_back(n);
  }
  std::sort(sorted.rbegin(), sorted.rend());
  std::size_t total = 0;
  for (const std::size_t n : sorted) {
    total += n;
  }
  std::printf("\nPopularity skew (drives the hot/cold split):\n");
  std::size_t acc = 0;
  std::size_t i = 0;
  for (const double frac : {0.01, 0.05, 0.10, 0.25}) {
    const std::size_t top = std::max<std::size_t>(
        1, static_cast<std::size_t>(frac * static_cast<double>(swim.file_count)));
    while (i < top && i < sorted.size()) {
      acc += sorted[i++];
    }
    std::printf("  top %4.0f%% of files take %5.1f%% of accesses\n", 100 * frac,
                100.0 * static_cast<double>(acc) / static_cast<double>(total));
  }
  return 0;
}
