// Ablation A8 — predictive vs reactive hot detection (the paper's §V future
// work). A file's popularity ramps up over several minutes; the reactive
// judge promotes only after formula (1) fires, while the Holt-forecast
// judge promotes on the rising trend — earlier, which matters because the
// scale-up itself costs ~30 s of standby boot plus copy time.
#include <cmath>

#include "bench_common.h"

using namespace erms;
using bench::Testbed;

namespace {

struct RampResult {
  double promoted_at_s = -1.0;   // replication raised above 3
  double capacity_at_s = -1.0;   // all extra replicas in place
  std::uint64_t stalled_reads{0};
  std::uint64_t predictive_promotions{0};
};

RampResult run(bool predictive) {
  Testbed t;
  core::ErmsConfig cfg;
  cfg.thresholds.window = sim::minutes(2.0);
  cfg.thresholds.tau_M = 8.0;
  cfg.evaluation_period = sim::seconds(15.0);
  cfg.predictive = predictive;
  // Reactive smoothing tuned for a fast exponential rise.
  cfg.predictor.alpha = 0.7;
  cfg.predictor.beta = 0.5;
  cfg.predictor.horizon_periods = 4.0;
  core::ErmsManager erms{*t.cluster, t.standby_pool(), cfg};
  const auto file = t.cluster->populate_file("/ramp", 256 * util::MiB, 3);
  erms.start();

  // Exponentially ramping request rate (popularity doubling every 2 min —
  // the "popularity spikes when the data is freshest" pattern): 0.05 -> 2
  // reads/s over ~11 minutes.
  const double ramp_s = 660.0;
  double at = 30.0;
  int i = 0;
  while (at < ramp_s) {
    t.sim.schedule_at(sim::SimTime{static_cast<std::int64_t>(at * 1e6)}, [&t, &file, i] {
      t.cluster->read_file(hdfs::NodeId{static_cast<std::uint32_t>(i % 10)}, *file,
                           [](const hdfs::ReadOutcome&) {});
    });
    const double rate = std::min(2.0, 0.05 * std::pow(2.0, at / 120.0));
    at += 1.0 / rate;
    ++i;
  }

  RampResult out;
  for (int s = 0; s < 780; ++s) {
    t.sim.schedule_at(sim::SimTime{static_cast<std::int64_t>(s * 1e6)}, [&t, &file, &out, s] {
      const hdfs::FileInfo* info = t.cluster->metadata().find(*file);
      if (out.promoted_at_s < 0 && info->replication > 3) {
        out.promoted_at_s = s;
      }
      if (out.capacity_at_s < 0 && info->replication > 3) {
        bool complete = true;
        for (const hdfs::BlockId b : info->blocks) {
          complete = complete && t.cluster->locations(b).size() >= info->replication;
        }
        if (complete) {
          out.capacity_at_s = s;
        }
      }
    });
  }
  t.sim.run_until(sim::SimTime{sim::minutes(13.0).micros()});
  out.stalled_reads = t.cluster->reads_rejected();
  out.predictive_promotions = erms.stats().predictive_promotions;
  erms.stop();
  return out;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation A8 — reactive vs predictive hot detection (ramping load)",
      "Forecast-based promotion (paper §V future work) should raise "
      "replication earlier on a rising ramp, cutting stalled reads.");

  const RampResult reactive = run(false);
  const RampResult predictive = run(true);

  util::Table table({"mode", "promoted at (s)", "capacity ready at (s)",
                     "session-stalled reads", "forecast promotions"});
  auto row = [&](const char* name, const RampResult& r) {
    table.add_row({name,
                   r.promoted_at_s < 0 ? "never" : util::Table::cell(r.promoted_at_s, 0),
                   r.capacity_at_s < 0 ? "never" : util::Table::cell(r.capacity_at_s, 0),
                   util::Table::cell(r.stalled_reads),
                   util::Table::cell(r.predictive_promotions)});
  };
  row("reactive (paper §III)", reactive);
  row("predictive (paper §V)", predictive);
  bench::emit_table("abl_predictive", table);
  std::printf("\nExpected shape: predictive promotes earlier (and never later).\n");
  return 0;
}
