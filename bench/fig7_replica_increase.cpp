// Fig. 7 — Increasing replicas: directly to the optimal count vs one by one.
//
// The paper compares, across file sizes 64 MB .. 8 GB, raising a file's
// replication in one step ("Whole") against raising it one factor at a time
// ("By One"), and finds the direct increase is clearly better. ERMS
// therefore computes the optimal factor and jumps straight to it.
#include "bench_common.h"
#include "obs/observability.h"

using namespace erms;
using bench::Testbed;

namespace {

double time_increase(std::uint64_t file_bytes, hdfs::Cluster::IncreaseMode mode,
                     obs::Observability* bundle) {
  Testbed t;
  t.cluster->set_observability(bundle);
  const auto file = t.cluster->populate_file("/bench/f", file_bytes, 3);
  bool done = false;
  t.cluster->change_replication(*file, 8, mode, [&](bool) { done = true; });
  t.sim.run();
  return done ? t.sim.now().seconds() : -1.0;
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 7 — Replication increase 3 -> 8: whole vs one-by-one (seconds)",
      "Increasing the replica count directly to the target beats stepping "
      "one by one, across file sizes 64 MB - 8 GB.");

  const std::vector<std::pair<std::string, std::uint64_t>> sizes = {
      {"64MB", 64 * util::MiB},   {"128MB", 128 * util::MiB},
      {"256MB", 256 * util::MiB}, {"512MB", 512 * util::MiB},
      {"1GB", 1 * util::GiB},     {"2GB", 2 * util::GiB},
      {"4GB", 4 * util::GiB},     {"8GB", 8 * util::GiB}};

  // ERMS_OBSERVE=1 attaches the observability layer to every run: each
  // increase then leaves a set_replication trace event whose bytes_moved and
  // target nodes explain the ramp (export with ERMS_TRACE_PATH).
  const char* observe_env = std::getenv("ERMS_OBSERVE");
  const bool observe = observe_env != nullptr && *observe_env != '\0';
  std::unique_ptr<obs::Observability> bundle;
  if (observe) {
    bundle = std::make_unique<obs::Observability>();
  }

  util::Table table({"file size", "Whole (s)", "By One (s)", "speedup"});
  for (const auto& [label, bytes] : sizes) {
    const double whole =
        time_increase(bytes, hdfs::Cluster::IncreaseMode::kDirect, bundle.get());
    const double by_one =
        time_increase(bytes, hdfs::Cluster::IncreaseMode::kOneByOne, bundle.get());
    table.add_row({label, util::Table::cell(whole, 1), util::Table::cell(by_one, 1),
                   util::Table::cell(by_one / whole, 2)});
  }
  bench::emit_table("fig7", table);
  std::printf("\nExpected shape: 'Whole' below 'By One' at every size (speedup > 1).\n");

  if (bundle) {
    std::printf("\n--- observed (ERMS_OBSERVE) ---\n%s\n", bundle->text_report().c_str());
    std::printf("Last replication trace events:\n");
    const auto events = bundle->trace().snapshot();
    const std::size_t start = events.size() > 4 ? events.size() - 4 : 0;
    for (std::size_t i = start; i < events.size(); ++i) {
      std::printf("  %s\n", events[i].to_json().c_str());
    }
    if (const char* path = obs::Observability::env_trace_path()) {
      if (bundle->export_trace(path)) {
        std::printf("Full trace exported to %s\n", path);
      }
    }
  }
  return 0;
}
