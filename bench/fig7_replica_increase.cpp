// Fig. 7 — Increasing replicas: directly to the optimal count vs one by one.
//
// The paper compares, across file sizes 64 MB .. 8 GB, raising a file's
// replication in one step ("Whole") against raising it one factor at a time
// ("By One"), and finds the direct increase is clearly better. ERMS
// therefore computes the optimal factor and jumps straight to it.
#include "bench_common.h"

using namespace erms;
using bench::Testbed;

namespace {

double time_increase(std::uint64_t file_bytes, hdfs::Cluster::IncreaseMode mode) {
  Testbed t;
  const auto file = t.cluster->populate_file("/bench/f", file_bytes, 3);
  bool done = false;
  t.cluster->change_replication(*file, 8, mode, [&](bool) { done = true; });
  t.sim.run();
  return done ? t.sim.now().seconds() : -1.0;
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 7 — Replication increase 3 -> 8: whole vs one-by-one (seconds)",
      "Increasing the replica count directly to the target beats stepping "
      "one by one, across file sizes 64 MB - 8 GB.");

  const std::vector<std::pair<std::string, std::uint64_t>> sizes = {
      {"64MB", 64 * util::MiB},   {"128MB", 128 * util::MiB},
      {"256MB", 256 * util::MiB}, {"512MB", 512 * util::MiB},
      {"1GB", 1 * util::GiB},     {"2GB", 2 * util::GiB},
      {"4GB", 4 * util::GiB},     {"8GB", 8 * util::GiB}};

  util::Table table({"file size", "Whole (s)", "By One (s)", "speedup"});
  for (const auto& [label, bytes] : sizes) {
    const double whole = time_increase(bytes, hdfs::Cluster::IncreaseMode::kDirect);
    const double by_one = time_increase(bytes, hdfs::Cluster::IncreaseMode::kOneByOne);
    table.add_row({label, util::Table::cell(whole, 1), util::Table::cell(by_one, 1),
                   util::Table::cell(by_one / whole, 2)});
  }
  bench::emit_table("fig7", table);
  std::printf("\nExpected shape: 'Whole' below 'By One' at every size (speedup > 1).\n");
  return 0;
}
