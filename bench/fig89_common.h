#pragma once

// Shared scenario for Figs. 8 and 9: a 1 GiB target file at replication
// factor r, hosted either by an all-active 18-node cluster or by the
// active/standby split (10 active + 8 standby), under a steady background
// load that keeps active datanodes busy — the situation where the paper
// says "standby nodes might be better than active nodes" (§III.B).
//
// Under all-active, every replica shares its node with background traffic.
// Under active/standby, the base 3 replicas sit on (busy) active nodes but
// every extra replica lands on a freshly commissioned, unloaded standby
// node via the ERMS placement policy.

#include "bench_common.h"
#include "core/erms_placement.h"
#include "core/standby.h"

namespace erms::bench {

struct Scenario {
  std::unique_ptr<Testbed> testbed;
  std::string path = "/bench/target";
};

inline Scenario prepare_scenario(bool active_standby, std::uint32_t replication,
                                 std::uint64_t file_bytes = util::GiB) {
  Scenario s;
  s.testbed = std::make_unique<Testbed>();
  Testbed& t = *s.testbed;

  std::shared_ptr<core::ErmsPlacementPolicy> policy;
  std::unique_ptr<core::StandbyManager> standby;
  if (active_standby) {
    const auto pool = t.standby_pool();
    policy = std::make_shared<core::ErmsPlacementPolicy>(
        std::set<hdfs::NodeId>(pool.begin(), pool.end()), 3);
    t.cluster->set_placement_policy(policy);
    standby = std::make_unique<core::StandbyManager>(*t.cluster, pool);
  }

  // Background load: long-lived single-replica filler files, each pinned
  // down by three remote readers. Fillers land on active nodes only (the
  // ERMS policy keeps base replicas off the pool).
  std::vector<hdfs::FileId> fillers;
  for (int i = 0; i < 8; ++i) {
    fillers.push_back(
        *t.cluster->populate_file("/bench/bg" + std::to_string(i), 2 * util::GiB, 1));
  }

  // Target file: base replicas first, then the elastic increase.
  const auto target = t.cluster->populate_file(s.path, file_bytes,
                                               std::min<std::uint32_t>(3, replication));
  if (replication > 3) {
    if (active_standby) {
      // The experiment's standby half is fully available (8 nodes), so the
      // placement policy can spread each block's extra replicas.
      standby->ensure_commissioned(t.standby_pool().size());
      t.sim.run();
    }
    bool done = false;
    t.cluster->change_replication(*target, replication,
                                  hdfs::Cluster::IncreaseMode::kDirect,
                                  [&](bool) { done = true; });
    while (!done && t.sim.step()) {
    }
  }

  // Start the background readers. Each loops over its filler file forever,
  // so the load persists for however long the measurement runs.
  const std::vector<hdfs::NodeId> bg_clients =
      active_standby ? t.active_set() : t.topo.nodes();
  for (std::size_t i = 0; i < fillers.size(); ++i) {
    for (std::uint32_t r = 0; r < 3; ++r) {
      const hdfs::NodeId client = bg_clients[(i * 3 + r) % bg_clients.size()];
      const hdfs::FileId file = fillers[i];
      hdfs::Cluster* cluster = t.cluster.get();
      auto loop = std::make_shared<std::function<void()>>();
      *loop = [cluster, client, file, loop] {
        cluster->read_file(client, file, [cluster, loop](const hdfs::ReadOutcome&) {
          cluster->simulation().schedule_after(sim::millis(1), [loop] { (*loop)(); });
        });
      };
      (*loop)();
    }
  }
  // Let the reads get admitted.
  t.sim.run_until(t.sim.now() + sim::millis(10));

  // StandbyManager/policy keep shared state alive via the cluster's policy
  // pointer; the manager itself can go out of scope now.
  return s;
}

}  // namespace erms::bench
