// Fig. 8 — Maximum concurrent access number the replicas can hold (1 GB
// file), all-active vs active/standby.
//
// The paper ramps concurrent readers until requests are refused: capacity
// grows roughly linearly with the replica count (~8-10 sessions per
// replica, which fixes τ_M), and the active/standby model holds more than
// keeping all 18 nodes active because extra replicas land on unloaded
// standby nodes.
#include "fig89_common.h"
#include "mapred/testdfsio.h"

using namespace erms;
using bench::prepare_scenario;

int main() {
  bench::print_header(
      "Fig. 8 — Max concurrent readers the replicas can hold (1 GB file)",
      "Grows ~linearly with replica count (~8-10 per replica); "
      "Active/Standby >= All Active under background load.");

  util::Table table({"replicas", "All Active", "Active/Standby", "A/S per replica"});
  for (std::uint32_t rep = 1; rep <= 10; ++rep) {
    auto all_active = prepare_scenario(false, rep);
    const std::size_t max_aa = mapred::max_concurrent_readers(
        *all_active.testbed->cluster, all_active.path, 120);

    auto split = prepare_scenario(true, rep);
    const std::size_t max_as = mapred::max_concurrent_readers(
        *split.testbed->cluster, split.path, 120);

    table.add_row({util::Table::cell(std::uint64_t{rep}),
                   util::Table::cell(std::uint64_t{max_aa}),
                   util::Table::cell(std::uint64_t{max_as}),
                   util::Table::cell(static_cast<double>(max_as) / rep, 1)});
  }
  bench::emit_table("fig8", table);
  std::printf("\nThe per-replica capacity bounds tau_M (the paper measured 8-10 on "
              "its hardware).\n");
  return 0;
}
