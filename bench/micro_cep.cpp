// Microbenchmark A5 — CEP engine throughput. The engine sits on the audit
// hot path (every namenode operation flows through it), so events/second
// here bounds the cluster request rate ERMS can watch — the paper picked
// CEP precisely for "high-volume, low-latency" processing.
#include <benchmark/benchmark.h>

#include "audit/audit.h"
#include "cep/engine.h"
#include "cep/epl_parser.h"

namespace {

using erms::audit::AuditEvent;
using erms::cep::Engine;
using erms::cep::parse_epl;

AuditEvent make_event(int i) {
  AuditEvent e;
  e.time = erms::sim::SimTime{static_cast<std::int64_t>(i) * 1000};
  e.cmd = (i % 3 == 0) ? "open" : "read";
  e.src = "/data/part-" + std::to_string(i % 50);
  e.block = i % 400;
  e.datanode = i % 18;
  return e;
}

/// The exact standing-query set the Data Judge registers.
void register_judge_queries(Engine& engine) {
  engine.register_query(parse_epl(
      "SELECT count(*) AS n FROM audit WHERE cmd == \"open\" GROUP BY src WINDOW TIME 60s"));
  engine.register_query(parse_epl(
      "SELECT count(*) AS n FROM audit WHERE cmd == \"read\" GROUP BY src, blk WINDOW TIME 60s"));
  engine.register_query(parse_epl(
      "SELECT count(*) AS n FROM audit WHERE cmd == \"read\" GROUP BY dn WINDOW TIME 60s"));
  engine.register_query(parse_epl(
      "SELECT count(*) AS n FROM audit WHERE cmd == \"read\" GROUP BY src, dn WINDOW TIME 60s"));
}

void BM_CepPushJudgeQueries(benchmark::State& state) {
  Engine engine;
  register_judge_queries(engine);
  std::vector<erms::cep::Event> events;
  for (int i = 0; i < 1000; ++i) {
    events.push_back(make_event(i).to_cep_event());
  }
  int tick = 0;
  for (auto _ : state) {
    for (auto event : events) {
      event.time = erms::sim::SimTime{static_cast<std::int64_t>(tick++) * 1000};
      engine.push(event);
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CepPushJudgeQueries);

void BM_CepSnapshot(benchmark::State& state) {
  Engine engine;
  const auto id = engine.register_query(parse_epl(
      "SELECT count(*) AS n FROM audit GROUP BY src WINDOW TIME 600s"));
  for (int i = 0; i < 5000; ++i) {
    engine.push(make_event(i).to_cep_event());
  }
  for (auto _ : state) {
    auto rows = engine.snapshot(id);
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_CepSnapshot);

void BM_AuditParseLine(benchmark::State& state) {
  const std::string line = make_event(7).to_line();
  for (auto _ : state) {
    auto parsed = erms::audit::AuditLogParser::parse_line(line);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AuditParseLine);

void BM_EplParse(benchmark::State& state) {
  for (auto _ : state) {
    auto q = parse_epl(
        "SELECT count(*) AS n, avg(bytes) AS b FROM audit WHERE cmd == \"read\" "
        "GROUP BY src, dn WINDOW TIME 60s HAVING n > 8");
    benchmark::DoNotOptimize(q);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EplParse);

}  // namespace
