// Microbenchmark A5 — CEP engine throughput. The engine sits on the audit
// hot path (every namenode operation flows through it), so events/second
// here bounds the cluster request rate ERMS can watch — the paper picked
// CEP precisely for "high-volume, low-latency" processing.
//
// Two layers:
//  * a custom ingest sweep comparing the ClassAd event path against the
//    slotted path (with the compiled WHERE fast path on and off), plus a
//    ShardedEngine sweep over shard counts × batch sizes, written to
//    BENCH_cep.json (override with ERMS_BENCH_OUT) so the numbers form a
//    trajectory across PRs;
//  * the usual google-benchmark timings.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "audit/audit.h"
#include "cep/engine.h"
#include "cep/epl_parser.h"
#include "cep/sharded_engine.h"

namespace {

using erms::audit::AuditEvent;
using erms::audit::AuditSlots;
using erms::cep::Engine;
using erms::cep::EngineBase;
using erms::cep::parse_epl;
using erms::cep::ShardedEngine;
using erms::cep::ShardedEngineOptions;
using erms::cep::SlottedEvent;
namespace sim = erms::sim;

AuditEvent make_event(int i) {
  AuditEvent e;
  e.time = erms::sim::SimTime{static_cast<std::int64_t>(i) * 1000};
  e.cmd = (i % 3 == 0) ? "open" : "read";
  e.src = "/data/part-" + std::to_string(i % 50);
  e.block = i % 400;
  e.datanode = i % 18;
  return e;
}

/// The exact standing-query set the Data Judge registers.
void register_judge_queries(EngineBase& engine) {
  engine.register_query(parse_epl(
      "SELECT count(*) AS n FROM audit WHERE cmd == \"open\" GROUP BY src WINDOW TIME 60s"));
  engine.register_query(parse_epl(
      "SELECT count(*) AS n FROM audit WHERE cmd == \"read\" GROUP BY src, blk WINDOW TIME 60s"));
  engine.register_query(parse_epl(
      "SELECT count(*) AS n FROM audit WHERE cmd == \"read\" GROUP BY dn WINDOW TIME 60s"));
  engine.register_query(parse_epl(
      "SELECT count(*) AS n FROM audit WHERE cmd == \"read\" GROUP BY src, dn WINDOW TIME 60s"));
}

// ----- ingest sweep -> BENCH_cep.json ---------------------------------------------

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<AuditEvent> make_workload(int n) {
  std::vector<AuditEvent> events;
  events.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    events.push_back(make_event(i));
  }
  return events;
}

/// Events/s of the slotted ingest path into `engine` (scalar or sharded).
/// Two passes, best-of taken, to shed scheduler noise; the second pass also
/// runs with warm window/group state, which is the steady-state shape.
double slotted_rate(EngineBase& engine, const std::vector<AuditEvent>& events) {
  const AuditSlots slots = AuditSlots::resolve(engine.attr_symbols(), engine.stream_symbols());
  SlottedEvent scratch;
  double best = 0.0;
  sim::SimDuration epoch{0};
  for (int pass = 0; pass < 2; ++pass) {
    const double t0 = now_seconds();
    for (const AuditEvent& e : events) {
      e.to_slotted(slots, scratch);
      scratch.time = e.time + epoch;  // keep times monotone across passes
      engine.push_slotted(scratch);
    }
    engine.advance_to(events.back().time + epoch);  // drain pending batches
    const double dt = now_seconds() - t0;
    best = std::max(best, static_cast<double>(events.size()) / dt);
    epoch = epoch + (events.back().time - sim::SimTime{0}) + sim::seconds(1.0);
  }
  return best;
}

/// Events/s of the legacy path: ClassAd events through EngineBase::push.
double classad_rate(EngineBase& engine, const std::vector<AuditEvent>& events) {
  std::vector<erms::cep::Event> converted;
  converted.reserve(events.size());
  for (const AuditEvent& e : events) {
    converted.push_back(e.to_cep_event());
  }
  const sim::SimDuration epoch =
      (converted.back().time - sim::SimTime{0}) + sim::seconds(1.0);
  double best = 0.0;
  for (int pass = 0; pass < 2; ++pass) {
    const double t0 = now_seconds();
    for (erms::cep::Event& e : converted) {
      engine.push(e);
      e.time = e.time + epoch;  // pre-shift for the next pass
    }
    const double dt = now_seconds() - t0;
    best = std::max(best, static_cast<double>(events.size()) / dt);
  }
  return best;
}

void ingest_sweep(std::FILE* json) {
  // ERMS_CEP_SWEEP_EVENTS shrinks the sweep for sanitizer/CI smoke runs.
  int slotted_events = 400000;
  if (const char* env = std::getenv("ERMS_CEP_SWEEP_EVENTS")) {
    const int n = std::atoi(env);
    if (n > 0) {
      slotted_events = n;
    }
  }
  const int kClassAdEvents = std::min(slotted_events, 50000);  // the slow path
  const int kSlottedEvents = slotted_events;
  const auto small = make_workload(kClassAdEvents);
  const auto large = make_workload(kSlottedEvents);

  double classad_path = 0.0;
  {
    Engine engine;
    register_judge_queries(engine);
    classad_path = classad_rate(engine, small);
  }
  double slotted_fallback = 0.0;
  {
    Engine engine;
    engine.set_use_fast_path(false);  // WHERE still runs through ClassAd
    register_judge_queries(engine);
    slotted_fallback = slotted_rate(engine, small);
  }
  double slotted_compiled = 0.0;
  {
    Engine engine;
    register_judge_queries(engine);
    slotted_compiled = slotted_rate(engine, large);
  }

  std::fprintf(json,
               "{\n"
               "  \"bench\": \"micro_cep\",\n"
               "  \"unit\": \"events/s\",\n"
               "  \"hardware_threads\": %u,\n"
               "  \"judge_queries\": 4,\n"
               "  \"single_thread\": {\"classad_event_path\": %.0f, "
               "\"slotted_classad_where\": %.0f, \"slotted_compiled\": %.0f},\n",
               std::thread::hardware_concurrency(), classad_path, slotted_fallback,
               slotted_compiled);

  std::fprintf(json, "  \"sharded_compiled\": {");
  const int shard_counts[] = {1, 2, 4, 8};
  const std::size_t batch_sizes[] = {64, 256, 1024};
  for (std::size_t si = 0; si < 4; ++si) {
    std::fprintf(json, "%s\"s%d\": {", si == 0 ? "" : ", ", shard_counts[si]);
    for (std::size_t bi = 0; bi < 3; ++bi) {
      ShardedEngineOptions opts;
      opts.shards = static_cast<std::size_t>(shard_counts[si]);
      opts.batch_events = batch_sizes[bi];
      ShardedEngine engine(opts);
      register_judge_queries(engine);
      const double rate = slotted_rate(engine, large);
      std::fprintf(json, "%s\"b%zu\": %.0f", bi == 0 ? "" : ", ", batch_sizes[bi], rate);
    }
    std::fprintf(json, "}");
  }
  std::fprintf(json, "},\n");

  {
    const std::string line = make_event(7).to_line();
    const int reps = std::max(5 * kSlottedEvents, 100000);
    auto warm = erms::audit::AuditLogParser::parse_line(line);
    benchmark::DoNotOptimize(warm);
    const double t0 = now_seconds();
    for (int i = 0; i < reps; ++i) {
      auto parsed = erms::audit::AuditLogParser::parse_line(line);
      benchmark::DoNotOptimize(parsed);
    }
    const double dt = now_seconds() - t0;
    std::fprintf(json, "  \"audit_parse\": {\"lines_per_s\": %.0f}\n}\n",
                 static_cast<double>(reps) / dt);
  }
}

// ----- google-benchmark timings ---------------------------------------------------

void BM_CepPushJudgeQueries(benchmark::State& state) {
  Engine engine;
  register_judge_queries(engine);
  std::vector<erms::cep::Event> events;
  for (int i = 0; i < 1000; ++i) {
    events.push_back(make_event(i).to_cep_event());
  }
  int tick = 0;
  for (auto _ : state) {
    for (auto event : events) {
      event.time = erms::sim::SimTime{static_cast<std::int64_t>(tick++) * 1000};
      engine.push(event);
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CepPushJudgeQueries);

void BM_CepPushSlottedJudgeQueries(benchmark::State& state) {
  Engine engine;
  register_judge_queries(engine);
  const AuditSlots slots = AuditSlots::resolve(engine.attr_symbols(), engine.stream_symbols());
  std::vector<AuditEvent> events = make_workload(1000);
  SlottedEvent scratch;
  int tick = 0;
  for (auto _ : state) {
    for (AuditEvent& event : events) {
      event.time = erms::sim::SimTime{static_cast<std::int64_t>(tick++) * 1000};
      event.to_slotted(slots, scratch);
      engine.push_slotted(scratch);
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CepPushSlottedJudgeQueries);

void BM_CepSnapshot(benchmark::State& state) {
  Engine engine;
  const auto id = engine.register_query(parse_epl(
      "SELECT count(*) AS n FROM audit GROUP BY src WINDOW TIME 600s"));
  for (int i = 0; i < 5000; ++i) {
    engine.push(make_event(i).to_cep_event());
  }
  for (auto _ : state) {
    auto rows = engine.snapshot(id);
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_CepSnapshot);

void BM_AuditParseLine(benchmark::State& state) {
  const std::string line = make_event(7).to_line();
  for (auto _ : state) {
    auto parsed = erms::audit::AuditLogParser::parse_line(line);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AuditParseLine);

void BM_EplParse(benchmark::State& state) {
  for (auto _ : state) {
    auto q = parse_epl(
        "SELECT count(*) AS n, avg(bytes) AS b FROM audit WHERE cmd == \"read\" "
        "GROUP BY src, dn WINDOW TIME 60s HAVING n > 8");
    benchmark::DoNotOptimize(q);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EplParse);

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = std::getenv("ERMS_BENCH_OUT");
  if (out_path == nullptr) {
    out_path = "BENCH_cep.json";
  }
  std::FILE* json = std::fopen(out_path, "w");
  if (json != nullptr) {
    ingest_sweep(json);
    std::fclose(json);
    std::printf("ingest sweep written to %s\n\n", out_path);
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
