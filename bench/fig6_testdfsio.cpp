// Fig. 6 — TestDFSIO reading performance vs replication factor.
//
// The paper reads the same data with 7..35 concurrent threads at different
// replication factors and reports average execution time: more concurrent
// readers degrade performance; higher replication factors restore it.
#include "bench_common.h"
#include "mapred/testdfsio.h"

using namespace erms;
using bench::Testbed;

int main() {
  bench::print_header(
      "Fig. 6 — TestDFSIO read: avg execution time (s) vs replication factor",
      "High concurrency hurts; higher replication factor helps. Rows are "
      "reader counts (7..35), columns replication factors (1..7).");

  const std::vector<std::size_t> thread_counts = {7, 14, 21, 28, 35};
  const std::vector<std::uint32_t> reps = {1, 2, 3, 4, 5, 6, 7};

  std::vector<std::string> headers = {"readers"};
  for (const std::uint32_t rep : reps) {
    headers.push_back("rep=" + std::to_string(rep));
  }
  util::Table table(headers);

  for (const std::size_t readers : thread_counts) {
    std::vector<std::string> row = {util::Table::cell(std::uint64_t{readers})};
    for (const std::uint32_t rep : reps) {
      // Average several placements: replica-to-client locality luck is real
      // variance the paper's error bars would carry.
      double sum = 0.0;
      constexpr int kSeeds = 5;
      for (int seed = 0; seed < kSeeds; ++seed) {
        hdfs::ClusterConfig cfg;
        cfg.seed = 42 + static_cast<std::uint64_t>(seed);
        Testbed t{cfg};
        t.cluster->populate_file("/bench/input", 1 * util::GiB, rep);
        mapred::TestDfsIoOptions opts;
        opts.readers = readers;
        sum += mapred::run_concurrent_read(*t.cluster, "/bench/input", opts)
                   .mean_execution_s;
      }
      row.push_back(util::Table::cell(sum / kSeeds, 1));
    }
    table.add_row(std::move(row));
  }
  bench::emit_table("fig6", table);

  std::printf("\nShape checks: each column should grow downward (more readers → "
              "slower); each row should shrink rightward (more replicas → faster).\n");
  return 0;
}
