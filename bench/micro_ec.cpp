// Microbenchmark A4 — Reed-Solomon codec throughput.
// The encode path runs when ERMS demotes cold files; the decode path runs
// on degraded reads and re-warm. Rates here bound how fast the erasure
// manager can drain its queue.
//
// Two layers:
//  * a custom kernel sweep comparing scalar vs table vs SIMD region kernels
//    and single- vs multi-threaded stripe encode at the RS shapes ERMS uses,
//    written to BENCH_ec.json (override the path with ERMS_BENCH_OUT) so the
//    numbers form a trajectory across PRs;
//  * the usual google-benchmark timings (encode/reconstruct/round-trip),
//    which now exercise whichever kernel ERMS_EC_KERNEL selects.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "ec/codec_registry.h"
#include "ec/gf256.h"
#include "ec/gf_region.h"
#include "ec/reed_solomon.h"
#include "ec/stripe_codec.h"
#include "util/thread_pool.h"

namespace {

using erms::ec::GF256;
using erms::ec::KernelKind;
using erms::ec::MulTable;
using erms::ec::ReedSolomon;
using erms::ec::StripeCodec;
using erms::util::ThreadPool;

std::vector<ReedSolomon::Shard> random_shards(std::size_t count, std::size_t len) {
  std::mt19937 rng{42};
  std::vector<ReedSolomon::Shard> shards(count);
  for (auto& s : shards) {
    s.resize(len);
    for (auto& b : s) {
      b = static_cast<std::uint8_t>(rng() % 256);
    }
  }
  return shards;
}

// ----- kernel sweep -> BENCH_ec.json ----------------------------------------------

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// MB/s of repeated muladd_region over a 1 MiB region with kernel `kind`.
double bench_muladd_kernel(KernelKind kind) {
  const std::size_t len = 1 << 20;
  const auto src = random_shards(1, len).front();
  std::vector<std::uint8_t> dst(len, 0);
  const MulTable t(0x8d);
  // Warm up, then time enough repetitions for a stable figure.
  erms::ec::muladd_region(kind, t, dst.data(), src.data(), len);
  const int reps = kind == KernelKind::kScalar ? 64 : 512;
  const double t0 = now_seconds();
  for (int i = 0; i < reps; ++i) {
    erms::ec::muladd_region(kind, t, dst.data(), src.data(), len);
  }
  const double dt = now_seconds() - t0;
  benchmark::DoNotOptimize(dst);
  return static_cast<double>(len) * reps / dt / 1e6;
}

/// MB/s (of data bytes) for RS(k,m) encode of 1 MiB shards.
double bench_rs_encode(const ReedSolomon& rs, int reps) {
  const std::size_t shard_len = 1 << 20;
  const auto data = random_shards(rs.data_shards(), shard_len);
  auto warm = rs.encode(data);
  benchmark::DoNotOptimize(warm);
  const double t0 = now_seconds();
  for (int i = 0; i < reps; ++i) {
    auto parity = rs.encode(data);
    benchmark::DoNotOptimize(parity);
  }
  const double dt = now_seconds() - t0;
  return static_cast<double>(rs.data_shards()) * shard_len * reps / dt / 1e6;
}

void kernel_sweep(std::FILE* json) {
  std::fprintf(json, "{\n  \"bench\": \"micro_ec\",\n  \"unit\": \"MB/s\",\n");
  std::fprintf(json, "  \"active_kernel\": \"%.*s\",\n",
               static_cast<int>(erms::ec::kernel_name(erms::ec::active_kernel()).size()),
               erms::ec::kernel_name(erms::ec::active_kernel()).data());

  std::printf("== GF(256) muladd region kernels (1 MiB region) ==\n");
  std::fprintf(json, "  \"muladd_region\": {");
  bool first = true;
  for (const KernelKind k : {KernelKind::kScalar, KernelKind::kTable,
                             KernelKind::kSsse3, KernelKind::kAvx2}) {
    if (!erms::ec::kernel_supported(k)) {
      continue;
    }
    const double mbs = bench_muladd_kernel(k);
    std::printf("  %-6.*s %10.1f MB/s\n",
                static_cast<int>(erms::ec::kernel_name(k).size()),
                erms::ec::kernel_name(k).data(), mbs);
    std::fprintf(json, "%s\"%.*s\": %.1f", first ? "" : ", ",
                 static_cast<int>(erms::ec::kernel_name(k).size()),
                 erms::ec::kernel_name(k).data(), mbs);
    first = false;
  }
  std::fprintf(json, "},\n");

  std::printf("\n== RS encode, 1 MiB shards, active kernel ==\n");
  std::fprintf(json, "  \"rs_encode\": {");
  struct Shape {
    std::size_t k;
    std::size_t m;
    const char* name;
  };
  // RS(1+4) is the paper's cold-file config; RS(6,4) and RS(8,4) are the
  // HDFS-RAID-style stripes the issue tracks.
  const Shape shapes[] = {{1, 4, "rs1+4"}, {6, 4, "rs6_4"}, {8, 4, "rs8_4"}};
  first = true;
  for (const Shape& s : shapes) {
    ReedSolomon rs(s.k, s.m);
    const double mbs = bench_rs_encode(rs, 32);
    std::printf("  RS(%zu,%zu) %10.1f MB/s\n", s.k, s.m, mbs);
    std::fprintf(json, "%s\"%s\": %.1f", first ? "" : ", ", s.name, mbs);
    first = false;
  }
  std::fprintf(json, "},\n");

  std::printf("\n== Stripe encode 8 MiB file, RS(8,4), serial vs pool ==\n");
  std::fprintf(json, "  \"stripe_encode_threads\": {");
  std::vector<std::uint8_t> file(8 << 20);
  for (std::size_t i = 0; i < file.size(); ++i) {
    file[i] = static_cast<std::uint8_t>(i * 2654435761u >> 24);
  }
  first = true;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    StripeCodec codec(8, 4);
    ThreadPool pool(threads);
    if (threads > 1) {
      codec.set_thread_pool(&pool);
    }
    auto warm = codec.encode(file);
    benchmark::DoNotOptimize(warm);
    const int reps = 16;
    const double t0 = now_seconds();
    for (int i = 0; i < reps; ++i) {
      auto stripe = codec.encode(file);
      benchmark::DoNotOptimize(stripe);
    }
    const double dt = now_seconds() - t0;
    const double mbs = static_cast<double>(file.size()) * reps / dt / 1e6;
    std::printf("  %zu thread%s %10.1f MB/s\n", threads, threads == 1 ? " " : "s",
                mbs);
    std::fprintf(json, "%s\"t%zu\": %.1f", first ? "" : ", ", threads, mbs);
    first = false;
  }
  std::fprintf(json, "},\n");

  // Repair bandwidth of the codec zoo: shard-equivalents read to rebuild
  // one lost data shard (all other shards alive). Deterministic linear
  // algebra, not a timing — the trajectory catches plan regressions.
  std::printf("== Single-shard repair read cost (shard-equivalents) ==\n");
  std::fprintf(json, "  \"repair_shard_equivalents\": {");
  struct ZooShape {
    const char* label;
    erms::ec::CodecSpec spec;
    std::size_t k;
  };
  const ZooShape zoo[] = {
      {"rs8_4", {erms::ec::CodecKind::kRs, 4, 0, 0}, 8},
      {"azure_lrc8_2_2", {erms::ec::CodecKind::kAzureLrc, 0, 2, 2}, 8},
      {"hh_xor_plus8_4", {erms::ec::CodecKind::kHitchhikerXorPlus, 4, 0, 0}, 8},
  };
  first = true;
  for (const ZooShape& z : zoo) {
    const auto codec = erms::ec::make_codec(z.spec, z.k);
    std::vector<bool> present(codec->total_shards(), true);
    present[0] = false;
    const auto plan = codec->plan_repair(0, present);
    const double eq = plan ? plan->shard_equivalents() : 0.0;
    const std::size_t fanout = plan ? plan->fanout() : 0;
    std::printf("  %-16s %5.2f shards from %zu helpers\n", z.label, eq, fanout);
    std::fprintf(json, "%s\"%s\": {\"shard_equivalents\": %.2f, \"fanout\": %zu}",
                 first ? "" : ", ", z.label, eq, fanout);
    first = false;
  }
  std::fprintf(json, "}\n}\n");
  std::printf("\n");
}

// ----- google-benchmark timings ---------------------------------------------------

void BM_GfMultiply(benchmark::State& state) {
  std::uint8_t acc = 1;
  for (auto _ : state) {
    for (unsigned i = 1; i < 256; ++i) {
      acc = GF256::mul(acc | 1, static_cast<std::uint8_t>(i));
    }
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations() * 255);
}
BENCHMARK(BM_GfMultiply);

void BM_RsEncode(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const std::size_t shard_len = 1 << 20;  // 1 MiB shards
  ReedSolomon rs(k, 4);
  const auto data = random_shards(k, shard_len);
  for (auto _ : state) {
    auto parity = rs.encode(data);
    benchmark::DoNotOptimize(parity);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k * shard_len));
}
BENCHMARK(BM_RsEncode)->Arg(4)->Arg(8)->Arg(16);

void BM_RsEncodeThreaded(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const std::size_t shard_len = 1 << 20;
  ReedSolomon rs(k, 4);
  ThreadPool pool(threads);
  rs.set_thread_pool(&pool);
  const auto data = random_shards(k, shard_len);
  for (auto _ : state) {
    auto parity = rs.encode(data);
    benchmark::DoNotOptimize(parity);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k * shard_len));
}
BENCHMARK(BM_RsEncodeThreaded)->Args({8, 2})->Args({8, 4});

void BM_RsReconstructFourErasures(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const std::size_t shard_len = 1 << 20;
  ReedSolomon rs(k, 4);
  const auto data = random_shards(k, shard_len);
  auto parity = rs.encode(data);
  std::vector<ReedSolomon::Shard> full = data;
  full.insert(full.end(), parity.begin(), parity.end());
  for (auto _ : state) {
    auto shards = full;
    std::vector<bool> present(k + 4, true);
    present[0] = present[1] = present[k] = present[k + 1] = false;
    shards[0].clear();
    shards[1].clear();
    shards[k].clear();
    shards[k + 1].clear();
    const bool ok = rs.reconstruct(shards, present);
    benchmark::DoNotOptimize(ok);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(4 * shard_len));
}
BENCHMARK(BM_RsReconstructFourErasures)->Arg(8)->Arg(16);

void BM_StripeRoundTrip(benchmark::State& state) {
  StripeCodec codec(8, 4);
  std::vector<std::uint8_t> file(8 << 20);
  for (std::size_t i = 0; i < file.size(); ++i) {
    file[i] = static_cast<std::uint8_t>(i);
  }
  for (auto _ : state) {
    auto stripe = codec.encode(file);
    std::vector<std::uint8_t> out;
    codec.decode(stripe, std::vector<bool>(12, true), out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(file.size()));
}
BENCHMARK(BM_StripeRoundTrip);

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = std::getenv("ERMS_BENCH_OUT");
  if (out_path == nullptr) {
    out_path = "BENCH_ec.json";
  }
  std::FILE* json = std::fopen(out_path, "w");
  if (json != nullptr) {
    kernel_sweep(json);
    std::fclose(json);
    std::printf("kernel sweep written to %s\n\n", out_path);
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
