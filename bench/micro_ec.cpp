// Microbenchmark A4 — Reed-Solomon codec throughput (google-benchmark).
// The encode path runs when ERMS demotes cold files; the decode path runs
// on degraded reads and re-warm. Rates here bound how fast the erasure
// manager can drain its queue.
#include <benchmark/benchmark.h>

#include <random>

#include "ec/gf256.h"
#include "ec/reed_solomon.h"
#include "ec/stripe_codec.h"

namespace {

using erms::ec::GF256;
using erms::ec::ReedSolomon;
using erms::ec::StripeCodec;

std::vector<ReedSolomon::Shard> random_shards(std::size_t count, std::size_t len) {
  std::mt19937 rng{42};
  std::vector<ReedSolomon::Shard> shards(count);
  for (auto& s : shards) {
    s.resize(len);
    for (auto& b : s) {
      b = static_cast<std::uint8_t>(rng() % 256);
    }
  }
  return shards;
}

void BM_GfMultiply(benchmark::State& state) {
  std::uint8_t acc = 1;
  for (auto _ : state) {
    for (unsigned i = 1; i < 256; ++i) {
      acc = GF256::mul(acc | 1, static_cast<std::uint8_t>(i));
    }
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations() * 255);
}
BENCHMARK(BM_GfMultiply);

void BM_RsEncode(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const std::size_t shard_len = 1 << 20;  // 1 MiB shards
  ReedSolomon rs(k, 4);
  const auto data = random_shards(k, shard_len);
  for (auto _ : state) {
    auto parity = rs.encode(data);
    benchmark::DoNotOptimize(parity);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k * shard_len));
}
BENCHMARK(BM_RsEncode)->Arg(4)->Arg(8)->Arg(16);

void BM_RsReconstructFourErasures(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const std::size_t shard_len = 1 << 20;
  ReedSolomon rs(k, 4);
  const auto data = random_shards(k, shard_len);
  auto parity = rs.encode(data);
  std::vector<ReedSolomon::Shard> full = data;
  full.insert(full.end(), parity.begin(), parity.end());
  for (auto _ : state) {
    auto shards = full;
    std::vector<bool> present(k + 4, true);
    present[0] = present[1] = present[k] = present[k + 1] = false;
    shards[0].clear();
    shards[1].clear();
    shards[k].clear();
    shards[k + 1].clear();
    const bool ok = rs.reconstruct(shards, present);
    benchmark::DoNotOptimize(ok);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(4 * shard_len));
}
BENCHMARK(BM_RsReconstructFourErasures)->Arg(8)->Arg(16);

void BM_StripeRoundTrip(benchmark::State& state) {
  StripeCodec codec(8, 4);
  std::vector<std::uint8_t> file(8 << 20);
  for (std::size_t i = 0; i < file.size(); ++i) {
    file[i] = static_cast<std::uint8_t>(i);
  }
  for (auto _ : state) {
    auto stripe = codec.encode(file);
    std::vector<std::uint8_t> out;
    codec.decode(stripe, std::vector<bool>(12, true), out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(file.size()));
}
BENCHMARK(BM_StripeRoundTrip);

}  // namespace
