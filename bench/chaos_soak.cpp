// Chaos soak: the full ERMS lifecycle (hot -> cooled -> cold -> re-warm)
// under a seeded fault schedule, swept by the invariant checker at the end.
//
// Knobs (environment):
//   ERMS_CHAOS_SEED       seed for the fault plan (default 42)
//   ERMS_CHAOS_REPORT     write the deterministic invariant report here — CI
//                         runs the same seed twice and byte-compares the files
//   ERMS_SNAPSHOT_AT      sim-seconds: arm a quiescent-point snapshot barrier
//                         at this time and save to ERMS_SNAPSHOT_PATH. Must be
//                         past the first ERMS evaluation (>= 20s in).
//   ERMS_SNAPSHOT_PATH    snapshot file to save (with ERMS_SNAPSHOT_AT) or
//                         load (with ERMS_SNAPSHOT_RESUME)
//   ERMS_SNAPSHOT_EXIT    "1": stop right after the barrier save — phase one
//                         of the rolling-restart drill
//   ERMS_SNAPSHOT_RESUME  "1": restore from ERMS_SNAPSHOT_PATH, re-arm the
//                         remaining workload/faults/tick, run to completion.
//                         The fault seed travels inside the snapshot.
//   ERMS_SNAPSHOT_EVERY   sim-seconds: additionally save a snapshot at every
//                         such cadence and merge size + save/load latency
//                         stats into BENCH_scale.json (ERMS_SCALE_OUT)
//
// The rolling-restart contract, enforced by CI: a run that saves at T and
// exits, restored in a fresh process and run to the end, produces the very
// same bytes in ERMS_CHAOS_REPORT as a run that saves at T and keeps going.
//
// Exit status is non-zero if any invariant is violated, so this binary
// doubles as a replayable chaos gate.
#include "bench_common.h"

#include <chrono>
#include <functional>

#include "fault/fault_plan.h"
#include "fault/invariant_checker.h"
#include "snapshot/world.h"

namespace erms::bench {
namespace {

double env_f64(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return fallback;
  }
  return std::strtod(v, nullptr);
}

bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' && *v != '0';
}

core::ErmsConfig soak_erms_config() {
  core::ErmsConfig cfg;
  cfg.thresholds.window = sim::seconds(60.0);
  cfg.thresholds.cold_age = sim::minutes(12.0);
  cfg.evaluation_period = sim::seconds(20.0);
  cfg.observe = true;
  cfg.trace_capacity = 1 << 17;
  cfg.job_max_retries = 3;
  cfg.job_retry_backoff = sim::seconds(5.0);
  return cfg;
}

/// Workload: /soak/f0 runs the whole lifecycle (hot phase, silence to cool
/// and encode, then re-warm to decode); the rest serve a steady trickle so
/// flows are always in the air when faults land. `after` skips everything
/// already executed before a restored snapshot — the re-arm must happen
/// before fault arming and the manager tick so equal-time events keep the
/// uninterrupted run's order (reads, then faults, then tick).
void schedule_reads(Testbed& t, const std::vector<hdfs::FileId>& files,
                    sim::SimTime after) {
  const auto read_at = [&t, &files, after](sim::SimTime at, std::size_t file,
                                           std::uint32_t node) {
    if (at <= after) {
      return;
    }
    const hdfs::FileId f = files[file];
    t.sim.schedule_at(at, [&t, f, node] {
      t.cluster->read_file(hdfs::NodeId{node}, f, [](const hdfs::ReadOutcome&) {});
    });
  };
  for (int i = 0; i < 250; ++i) {
    read_at(sim::SimTime{static_cast<std::int64_t>(i * 0.6e6)}, 0,
            static_cast<std::uint32_t>(i % kNodes));
  }
  for (int i = 0; i < 300; ++i) {
    read_at(sim::SimTime{static_cast<std::int64_t>(i * 8.0e6)},
            1 + static_cast<std::size_t>(i) % 7, static_cast<std::uint32_t>(i % kNodes));
  }
  for (int i = 0; i < 200; ++i) {
    read_at(
        sim::SimTime{sim::minutes(32.0).micros() + static_cast<std::int64_t>(i * 0.6e6)},
        0, static_cast<std::uint32_t>(i % kNodes));
  }
}

fault::ChaosOptions soak_chaos(const Testbed& t) {
  fault::ChaosOptions opt;
  opt.start = sim::SimTime{sim::minutes(1.0).micros()};
  opt.end = sim::SimTime{sim::minutes(35.0).micros()};
  for (const hdfs::NodeId n : t.active_set()) {
    opt.victims.push_back(n.value());
  }
  opt.racks = {0, 1, 2};
  opt.max_concurrent_dead = 1;
  opt.mean_gap = sim::seconds(50.0);
  opt.min_downtime = sim::seconds(30.0);
  opt.max_downtime = sim::minutes(2.0);
  return opt;
}

/// Merge periodic-snapshot stats into BENCH_scale.json next to macro_scale's
/// keys (same splice idiom as repair_soak -> BENCH_ec.json).
void merge_snapshot_stats(double every_s, std::size_t count, std::size_t bytes_last,
                          std::size_t bytes_max, double save_mean_s, double load_s) {
  const char* out_path = std::getenv("ERMS_SCALE_OUT");
  if (out_path == nullptr || *out_path == '\0') {
    out_path = "BENCH_scale.json";
  }
  std::ostringstream section;
  section << "  \"chaos_snapshot\": {\n"
          << "    \"every_seconds\": " << every_s << ",\n"
          << "    \"snapshots\": " << count << ",\n"
          << "    \"bytes_last\": " << bytes_last << ",\n"
          << "    \"bytes_max\": " << bytes_max << ",\n"
          << "    \"save_seconds_mean\": " << save_mean_s << ",\n"
          << "    \"load_seconds\": " << load_s << "\n"
          << "  }\n"
          << "}\n";
  std::string existing;
  {
    std::ifstream in(out_path);
    std::ostringstream ss;
    ss << in.rdbuf();
    existing = ss.str();
  }
  const std::size_t close = existing.rfind('}');
  std::ofstream out(out_path);
  if (close != std::string::npos) {
    std::string head = existing.substr(0, close);
    while (!head.empty() && (head.back() == '\n' || head.back() == ' ')) {
      head.pop_back();
    }
    out << head << ",\n" << section.str();
  } else {
    out << "{\n" << section.str();
  }
  std::printf("chaos_snapshot stats merged into %s\n", out_path);
}

int run() {
  std::uint64_t seed = 42;
  if (const char* env = std::getenv("ERMS_CHAOS_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  const char* snap_path = std::getenv("ERMS_SNAPSHOT_PATH");
  const double snap_at = env_f64("ERMS_SNAPSHOT_AT", 0.0);
  const bool snap_exit = env_flag("ERMS_SNAPSHOT_EXIT");
  const bool snap_resume = env_flag("ERMS_SNAPSHOT_RESUME");
  const double snap_every = env_f64("ERMS_SNAPSHOT_EVERY", 0.0);

  Testbed t;
  core::ErmsManager erms{*t.cluster, t.standby_pool(), soak_erms_config()};

  std::vector<hdfs::FileId> files;
  for (int i = 0; i < 8; ++i) {
    files.push_back(
        *t.cluster->populate_file("/soak/f" + std::to_string(i), 128 * util::MiB, 3));
  }

  fault::FaultInjector injector{*t.cluster, &erms.observability()->trace()};
  const snapshot::WorldParts parts{&t.sim, t.cluster.get(), &erms, &injector, nullptr};

  sim::SimTime resumed_from{-1};
  if (snap_resume) {
    if (snap_path == nullptr) {
      std::fprintf(stderr, "error: ERMS_SNAPSHOT_RESUME needs ERMS_SNAPSHOT_PATH\n");
      return 2;
    }
    std::string user_data;
    if (const snapshot::SnapshotResult err =
            snapshot::restore_world(snap_path, parts, &user_data)) {
      std::fprintf(stderr, "error: cannot restore %s: %s\n", snap_path,
                   err->to_string().c_str());
      return 2;
    }
    // The snapshot carries its own fault seed; the environment's is ignored.
    seed = std::strtoull(user_data.c_str() + user_data.find('=') + 1, nullptr, 10);
    resumed_from = t.sim.now();
    std::printf("resumed from %s at t=%.1fs (seed=%llu)\n", snap_path,
                resumed_from.seconds(), static_cast<unsigned long long>(seed));
  } else {
    erms.start();
  }

  schedule_reads(t, files, resumed_from);

  const fault::FaultPlan plan = fault::FaultPlan::randomized(soak_chaos(t), seed);
  if (snap_resume) {
    injector.arm_after(plan, resumed_from);
    erms.resume();
  } else {
    injector.arm(plan);
  }

  // One-shot barrier: the rolling-restart save point. Armed in the reference
  // run too (without ERMS_SNAPSHOT_EXIT) so the save's flush side effects land
  // at the identical point in both histories.
  snapshot::SnapshotBarrier barrier{t.sim, parts};
  bool saved = false;
  int save_rc = 0;
  if (!snap_resume && snap_at > 0.0) {
    if (snap_path == nullptr) {
      std::fprintf(stderr, "error: ERMS_SNAPSHOT_AT needs ERMS_SNAPSHOT_PATH\n");
      return 2;
    }
    barrier.arm(sim::SimTime{static_cast<std::int64_t>(snap_at * 1e6)}, [&] {
      const std::string bytes =
          snapshot::save_world_bytes(parts, "seed=" + std::to_string(seed));
      if (const snapshot::SnapshotResult err = snapshot::write_file(snap_path, bytes)) {
        std::fprintf(stderr, "error: cannot save %s: %s\n", snap_path,
                     err->to_string().c_str());
        save_rc = 2;
        t.sim.stop();
        return;
      }
      saved = true;
      std::printf("snapshot saved to %s at t=%.1fs (%zu bytes)\n", snap_path,
                  t.sim.now().seconds(), bytes.size());
      if (snap_exit) {
        t.sim.stop();
      }
    });
  }

  // Periodic snapshot cadence for the scale report: size and save latency at
  // every quiescent point the cadence hits, plus one timed restore at the end.
  snapshot::SnapshotBarrier periodic{t.sim, parts};
  std::string periodic_bytes;
  std::size_t periodic_count = 0;
  std::size_t periodic_max = 0;
  double periodic_save_s = 0.0;
  std::function<void()> take_periodic;
  if (!snap_resume && snap_every > 0.0) {
    const sim::SimDuration cadence{static_cast<std::int64_t>(snap_every * 1e6)};
    take_periodic = [&, cadence] {
      const auto t0 = std::chrono::steady_clock::now();
      periodic_bytes = snapshot::save_world_bytes(parts, "seed=" + std::to_string(seed));
      periodic_save_s +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      ++periodic_count;
      periodic_max = std::max(periodic_max, periodic_bytes.size());
      periodic.arm(periodic.fired_at() + cadence, take_periodic);
    };
    periodic.arm(sim::SimTime{cadence.micros()}, take_periodic);
  }

  // 35 min of chaos, then a 10 min drain so recovery and revivals settle.
  t.sim.run_until(sim::SimTime{sim::minutes(45.0).micros()});

  if (save_rc != 0) {
    return save_rc;
  }
  if (!snap_resume && snap_at > 0.0 && !saved) {
    std::fprintf(stderr, "error: no quiescent point after t=%.1fs\n", snap_at);
    return 2;
  }
  if (snap_exit && saved) {
    // Phase one of the restart drill ends here; phase two resumes from disk.
    erms.stop();
    return 0;
  }

  const fault::InvariantChecker checker{*t.cluster, &erms.scheduler(),
                                        &erms.observability()->trace()};
  const fault::InvariantReport report = checker.check(/*converged=*/true);

  std::printf("chaos_soak seed=%llu faults_planned=%zu injected=%llu skipped=%llu\n",
              static_cast<unsigned long long>(seed), plan.size(),
              static_cast<unsigned long long>(injector.injected()),
              static_cast<unsigned long long>(injector.skipped()));
  std::printf("%s", report.text.c_str());
  const auto& stats = erms.stats();
  std::printf("erms hot_promotions=%llu cooldowns=%llu encodes=%llu decodes=%llu\n",
              static_cast<unsigned long long>(stats.hot_promotions),
              static_cast<unsigned long long>(stats.cooldowns),
              static_cast<unsigned long long>(stats.encodes),
              static_cast<unsigned long long>(stats.decodes));
  // stdout only — never part of the byte-compared ERMS_CHAOS_REPORT file.
  std::printf("peak_rss_bytes=%llu\n",
              static_cast<unsigned long long>(peak_rss_bytes()));

  if (!snap_resume && snap_every > 0.0 && periodic_count > 0) {
    // Time a full restore of the last periodic snapshot into a fresh world.
    Testbed fresh;
    core::ErmsManager fresh_erms{*fresh.cluster, fresh.standby_pool(), soak_erms_config()};
    fault::FaultInjector fresh_injector{*fresh.cluster,
                                        &fresh_erms.observability()->trace()};
    const snapshot::WorldParts fresh_parts{&fresh.sim, fresh.cluster.get(), &fresh_erms,
                                           &fresh_injector, nullptr};
    const auto t0 = std::chrono::steady_clock::now();
    const snapshot::SnapshotResult err =
        snapshot::restore_world_bytes(periodic_bytes, fresh_parts);
    const double load_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    if (err) {
      std::fprintf(stderr, "error: periodic snapshot does not restore: %s\n",
                   err->to_string().c_str());
      return 2;
    }
    std::printf("snapshots: %zu taken, last=%zu bytes, save mean %.1fms, load %.1fms\n",
                periodic_count, periodic_bytes.size(),
                1e3 * periodic_save_s / static_cast<double>(periodic_count),
                1e3 * load_s);
    merge_snapshot_stats(snap_every, periodic_count, periodic_bytes.size(), periodic_max,
                         periodic_save_s / static_cast<double>(periodic_count), load_s);
  }

  if (const char* path = std::getenv("ERMS_CHAOS_REPORT")) {
    std::ofstream out{path};
    out << "seed=" << seed << '\n' << plan.describe() << report.text;
  }
  erms.stop();
  return report.ok ? 0 : 1;
}

}  // namespace
}  // namespace erms::bench

int main() { return erms::bench::run(); }
