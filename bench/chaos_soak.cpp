// Chaos soak: the full ERMS lifecycle (hot -> cooled -> cold -> re-warm)
// under a seeded fault schedule, swept by the invariant checker at the end.
//
// Knobs (environment):
//   ERMS_CHAOS_SEED    seed for the fault plan (default 42)
//   ERMS_CHAOS_REPORT  write the deterministic invariant report here — CI
//                      runs the same seed twice and byte-compares the files
//
// Exit status is non-zero if any invariant is violated, so this binary
// doubles as a replayable chaos gate.
#include "bench_common.h"

#include "fault/fault_plan.h"
#include "fault/invariant_checker.h"

namespace erms::bench {
namespace {

int run() {
  std::uint64_t seed = 42;
  if (const char* env = std::getenv("ERMS_CHAOS_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }

  Testbed t;
  core::ErmsConfig cfg;
  cfg.thresholds.window = sim::seconds(60.0);
  cfg.thresholds.cold_age = sim::minutes(12.0);
  cfg.evaluation_period = sim::seconds(20.0);
  cfg.observe = true;
  cfg.trace_capacity = 1 << 17;
  cfg.job_max_retries = 3;
  cfg.job_retry_backoff = sim::seconds(5.0);
  core::ErmsManager erms{*t.cluster, t.standby_pool(), cfg};

  std::vector<hdfs::FileId> files;
  for (int i = 0; i < 8; ++i) {
    files.push_back(
        *t.cluster->populate_file("/soak/f" + std::to_string(i), 128 * util::MiB, 3));
  }
  erms.start();

  // Workload: /soak/f0 runs the whole lifecycle (hot phase, silence to cool
  // and encode, then re-warm to decode); the rest serve a steady trickle so
  // flows are always in the air when faults land.
  for (int i = 0; i < 250; ++i) {
    t.sim.schedule_at(sim::SimTime{static_cast<std::int64_t>(i * 0.6e6)}, [&t, &files, i] {
      t.cluster->read_file(hdfs::NodeId{static_cast<std::uint32_t>(i % kNodes)}, files[0],
                           [](const hdfs::ReadOutcome&) {});
    });
  }
  for (int i = 0; i < 300; ++i) {
    t.sim.schedule_at(sim::SimTime{static_cast<std::int64_t>(i * 8.0e6)}, [&t, &files, i] {
      t.cluster->read_file(hdfs::NodeId{static_cast<std::uint32_t>(i % kNodes)},
                           files[1 + static_cast<std::size_t>(i) % (files.size() - 1)],
                           [](const hdfs::ReadOutcome&) {});
    });
  }
  for (int i = 0; i < 200; ++i) {
    t.sim.schedule_at(
        sim::SimTime{sim::minutes(32.0).micros() + static_cast<std::int64_t>(i * 0.6e6)},
        [&t, &files, i] {
          t.cluster->read_file(hdfs::NodeId{static_cast<std::uint32_t>(i % kNodes)},
                               files[0], [](const hdfs::ReadOutcome&) {});
        });
  }

  fault::ChaosOptions opt;
  opt.start = sim::SimTime{sim::minutes(1.0).micros()};
  opt.end = sim::SimTime{sim::minutes(35.0).micros()};
  for (const hdfs::NodeId n : t.active_set()) {
    opt.victims.push_back(n.value());
  }
  opt.racks = {0, 1, 2};
  opt.max_concurrent_dead = 1;
  opt.mean_gap = sim::seconds(50.0);
  opt.min_downtime = sim::seconds(30.0);
  opt.max_downtime = sim::minutes(2.0);
  const fault::FaultPlan plan = fault::FaultPlan::randomized(opt, seed);
  fault::FaultInjector injector{*t.cluster, &erms.observability()->trace()};
  injector.arm(plan);

  // 35 min of chaos, then a 10 min drain so recovery and revivals settle.
  t.sim.run_until(sim::SimTime{sim::minutes(45.0).micros()});

  const fault::InvariantChecker checker{*t.cluster, &erms.scheduler(),
                                        &erms.observability()->trace()};
  const fault::InvariantReport report = checker.check(/*converged=*/true);

  std::printf("chaos_soak seed=%llu faults_planned=%zu injected=%llu skipped=%llu\n",
              static_cast<unsigned long long>(seed), plan.size(),
              static_cast<unsigned long long>(injector.injected()),
              static_cast<unsigned long long>(injector.skipped()));
  std::printf("%s", report.text.c_str());
  const auto& stats = erms.stats();
  std::printf("erms hot_promotions=%llu cooldowns=%llu encodes=%llu decodes=%llu\n",
              static_cast<unsigned long long>(stats.hot_promotions),
              static_cast<unsigned long long>(stats.cooldowns),
              static_cast<unsigned long long>(stats.encodes),
              static_cast<unsigned long long>(stats.decodes));
  // stdout only — never part of the byte-compared ERMS_CHAOS_REPORT file.
  std::printf("peak_rss_bytes=%llu\n",
              static_cast<unsigned long long>(peak_rss_bytes()));

  if (const char* path = std::getenv("ERMS_CHAOS_REPORT")) {
    std::ofstream out{path};
    out << "seed=" << seed << '\n' << plan.describe() << report.text;
  }
  erms.stop();
  return report.ok ? 0 : 1;
}

}  // namespace
}  // namespace erms::bench

int main() { return erms::bench::run(); }
