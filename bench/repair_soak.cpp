// Repair soak — the codec zoo's repair-bandwidth claim, measured as flow
// bytes, not arithmetic. For each registered code the same scenario runs on
// a fresh testbed: an 8-block cold file is erasure-coded, the node holding
// data shard 0 dies, clients issue degraded reads during the outage, and
// background reconstruction rebuilds the lost shards. The
// hdfs.ec.repair.bytes.* / hdfs.ec.degraded.bytes.* counters then say how
// many bytes each code actually pulled over the network.
//
// The headline acceptance gate of the zoo rides here: AzureLRC(8,2,2) must
// repair a single lost data shard with strictly fewer bytes than RS(8,4),
// and Hitchhiker-XOR+ must beat RS too. Exit status is non-zero otherwise.
//
// Results merge into BENCH_ec.json (micro_ec writes the file first in the
// CI bench loop; this bench sorts after it alphabetically and appends its
// own "repair_soak" key). Override the path with ERMS_BENCH_OUT.
#include "bench_common.h"

#include "ec/codec_registry.h"
#include "obs/observability.h"

namespace erms::bench {
namespace {

struct CodecResult {
  const char* name;
  std::uint64_t repair_bytes{0};
  std::uint64_t degraded_bytes{0};
  std::uint64_t fanout{0};
  std::uint64_t degraded_reads_ok{0};
  bool available{true};
  bool healed{false};
};

/// One soak: encode with `spec`, kill the holder of data shard 0, issue
/// degraded reads, drain recovery, scrape the per-codec counters.
CodecResult run_codec(const char* name, const ec::CodecSpec& spec) {
  CodecResult r;
  r.name = name;

  Testbed t;
  obs::Observability obs{1 << 15};
  t.cluster->set_observability(&obs);

  // 8 blocks of 64 MiB -> a k=8 stripe, the shape the handbook tables use.
  const auto file = t.cluster->populate_file("/soak/cold", 8 * 64 * util::MiB, 3);
  if (!file) {
    std::fprintf(stderr, "repair_soak: populate failed\n");
    return r;
  }

  bool encoded = false;
  t.cluster->encode_file(*file, spec, [&encoded](bool ok) { encoded = ok; });
  t.sim.run();
  if (!encoded) {
    std::fprintf(stderr, "repair_soak: encode(%s) failed\n", name);
    return r;
  }

  const hdfs::FileInfo* info = t.cluster->metadata().find(*file);
  const hdfs::BlockId data0 = info->blocks[0];
  const auto locs = t.cluster->locations(data0);
  t.cluster->fail_node(locs.front());

  // Degraded reads while the shard is still missing (scheduled now, before
  // background reconstruction has had simulated time to finish).
  for (std::uint32_t i = 0; i < 4; ++i) {
    t.cluster->read_block(hdfs::NodeId{(locs.front().value() + 1 + i) %
                                       static_cast<std::uint32_t>(kNodes)},
                          data0, [&r](const hdfs::ReadOutcome& out) {
                            if (out.ok && out.degraded) {
                              ++r.degraded_reads_ok;
                            }
                          });
  }
  t.sim.run_until(sim::SimTime{sim::minutes(30.0).micros()});

  auto& reg = obs.registry();
  auto scrape = [&reg](const std::string& counter) {
    return reg.counter_value(reg.counter(counter));
  };
  const std::string suffix = std::string(".") + name;
  r.repair_bytes = scrape("hdfs.ec.repair.bytes" + suffix);
  r.degraded_bytes = scrape("hdfs.ec.degraded.bytes" + suffix);
  r.fanout = scrape("hdfs.ec.repair.fanout");
  r.available = t.cluster->file_available(*file);
  r.healed = !t.cluster->locations(data0).empty() && t.cluster->blocks_lost() == 0;
  return r;
}

int run() {
  print_header("Repair soak — codec zoo repair bandwidth",
               "LRC/Hitchhiker repair a lost shard with fewer bytes than RS");

  const ec::CodecSpec specs[] = {
      {ec::CodecKind::kRs, 4, 0, 0},
      {ec::CodecKind::kAzureLrc, 0, 2, 2},
      {ec::CodecKind::kHitchhikerXorPlus, 4, 0, 0},
  };
  std::vector<CodecResult> results;
  for (const ec::CodecSpec& spec : specs) {
    results.push_back(run_codec(ec::to_string(spec.kind), spec));
  }

  util::Table table({"codec", "repair MiB", "degraded MiB", "fanout",
                     "degraded reads", "healed"});
  for (const CodecResult& r : results) {
    table.add_row({r.name,
                   std::to_string(r.repair_bytes / util::MiB),
                   std::to_string(r.degraded_bytes / util::MiB),
                   std::to_string(r.fanout), std::to_string(r.degraded_reads_ok),
                   r.available && r.healed ? "yes" : "NO"});
  }
  emit_table("repair_soak", table);

  // Merge into BENCH_ec.json so the repair trajectory rides next to the
  // kernel sweep across PRs.
  const char* out_path = std::getenv("ERMS_BENCH_OUT");
  if (out_path == nullptr) {
    out_path = "BENCH_ec.json";
  }
  std::string existing;
  {
    std::ifstream in(out_path);
    std::stringstream ss;
    ss << in.rdbuf();
    existing = ss.str();
  }
  std::ostringstream section;
  section << "  \"repair_soak\": {\"unit\": \"bytes\"";
  for (const CodecResult& r : results) {
    section << ", \"" << r.name << "\": {\"repair_bytes\": " << r.repair_bytes
            << ", \"degraded_bytes\": " << r.degraded_bytes << "}";
  }
  section << "}\n}\n";
  const std::size_t close = existing.rfind('}');
  std::ofstream out(out_path);
  if (close != std::string::npos) {
    // Drop the final '}' (and anything after it) and splice our key in.
    std::string head = existing.substr(0, close);
    while (!head.empty() && (head.back() == '\n' || head.back() == ' ')) {
      head.pop_back();
    }
    out << head << ",\n" << section.str();
  } else {
    out << "{\n" << section.str();
  }
  std::printf("repair_soak merged into %s\n", out_path);

  // Gates: every codec must heal and stay available; the repair-cheap codes
  // must beat RS on bytes (the zoo's reason to exist).
  const CodecResult& rs = results[0];
  bool ok = true;
  for (const CodecResult& r : results) {
    if (!r.available || !r.healed || r.degraded_reads_ok == 0) {
      std::fprintf(stderr, "FAIL: %s did not heal/serve degraded reads\n", r.name);
      ok = false;
    }
  }
  if (results[1].repair_bytes >= rs.repair_bytes) {
    std::fprintf(stderr, "FAIL: azure_lrc repair bytes (%llu) >= rs (%llu)\n",
                 static_cast<unsigned long long>(results[1].repair_bytes),
                 static_cast<unsigned long long>(rs.repair_bytes));
    ok = false;
  }
  if (results[2].repair_bytes >= rs.repair_bytes) {
    std::fprintf(stderr, "FAIL: hh_xor_plus repair bytes (%llu) >= rs (%llu)\n",
                 static_cast<unsigned long long>(results[2].repair_bytes),
                 static_cast<unsigned long long>(rs.repair_bytes));
    ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace erms::bench

int main() { return erms::bench::run(); }
