// Ablation A2 — CEP window-length sensitivity.
//
// The Data Judge reads access counts over a sliding time window t_w. Short
// windows react fast but misjudge bursts; long windows smooth noise but
// detect hot data late and keep replicas around after cool-down. This bench
// measures detection and cool-down latency of a square access burst across
// window lengths.
#include "bench_common.h"

using namespace erms;
using bench::Testbed;

namespace {

struct Latency {
  double detect_s = -1.0;    // burst start -> replication raised
  double cooldown_s = -1.0;  // burst end -> replication back to default
};

Latency run(double window_s) {
  Testbed t;
  core::ErmsConfig cfg;
  cfg.thresholds.window = sim::seconds(window_s);
  cfg.thresholds.tau_M = 8.0;
  cfg.evaluation_period = sim::seconds(10.0);
  core::ErmsManager erms{*t.cluster, t.standby_pool(), cfg};
  const auto file = t.cluster->populate_file("/burst", 128 * util::MiB, 3);
  erms.start();

  // Square burst: 3 reads/s in minutes [2, 8).
  const double burst_start = 120.0;
  const double burst_end = 480.0;
  for (int i = 0; i < static_cast<int>((burst_end - burst_start) * 3); ++i) {
    const double at = burst_start + i / 3.0;
    t.sim.schedule_at(sim::SimTime{static_cast<std::int64_t>(at * 1e6)}, [&t, &file, i] {
      t.cluster->read_file(hdfs::NodeId{static_cast<std::uint32_t>(i % 10)}, *file,
                           [](const hdfs::ReadOutcome&) {});
    });
  }

  Latency lat;
  // Sample replication every second.
  for (int s = 0; s < 1200; ++s) {
    t.sim.schedule_at(sim::SimTime{static_cast<std::int64_t>(s * 1e6)},
                      [&t, &file, &lat, s, burst_start, burst_end] {
                        const auto rep = t.cluster->metadata().find(*file)->replication;
                        if (lat.detect_s < 0 && rep > 3) {
                          lat.detect_s = s - burst_start;
                        }
                        if (lat.detect_s >= 0 && lat.cooldown_s < 0 && s > burst_end &&
                            rep == 3) {
                          lat.cooldown_s = s - burst_end;
                        }
                      });
  }
  t.sim.run_until(sim::SimTime{sim::seconds(1200.0).micros()});
  erms.stop();
  return lat;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation A2 — Data Judge window length vs reaction latency",
      "Short windows detect hot data sooner and release replicas sooner; "
      "the paper leaves t_w as an environment-tuned knob.");

  util::Table table({"window (s)", "hot-detection latency (s)", "cool-down latency (s)"});
  for (const double w : {15.0, 30.0, 60.0, 120.0, 300.0}) {
    const Latency lat = run(w);
    table.add_row({util::Table::cell(w, 0),
                   lat.detect_s < 0 ? "never" : util::Table::cell(lat.detect_s, 0),
                   lat.cooldown_s < 0 ? ">720" : util::Table::cell(lat.cooldown_s, 0)});
  }
  bench::emit_table("abl_cep_window", table);
  std::printf("\nExpected shape: both latencies grow with the window length.\n");
  return 0;
}
