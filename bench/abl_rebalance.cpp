// Ablation A9 — what re-balancing costs, and why ERMS avoids it.
//
// §III.B: "it is desirable to avoid rebalancing because it takes
// considerable time and bandwidth." We run the hot cycle (3 -> 8 -> 3
// replicas) under both placement policies, then invoke the HDFS balancer
// and measure what it has to do. Under Algorithm 1 the cycle leaves active
// nodes untouched, so the balancer is a no-op; under the stock policy the
// cool-down's deletions skew utilisation and the balancer pays for it.
#include <set>

#include "bench_common.h"
#include "core/erms_placement.h"
#include "core/standby.h"
#include "hdfs/balancer.h"

using namespace erms;
using bench::Testbed;

namespace {

struct CycleCost {
  double cycle_seconds;
  hdfs::Balancer::Report balancer;
};

CycleCost run(bool use_erms_policy) {
  hdfs::DataNodeConfig node;
  node.capacity_bytes = 8 * util::GiB;  // small disks so skew is visible
  Testbed t{hdfs::ClusterConfig{}, node};
  const auto pool = t.standby_pool();
  std::unique_ptr<core::StandbyManager> standby;
  if (use_erms_policy) {
    t.cluster->set_placement_policy(std::make_shared<core::ErmsPlacementPolicy>(
        std::set<hdfs::NodeId>(pool.begin(), pool.end()), 3));
    standby = std::make_unique<core::StandbyManager>(*t.cluster, pool);
    standby->ensure_commissioned(pool.size());
    t.sim.run();
  }

  // A dataset plus one file that goes hot and cools down again.
  for (int i = 0; i < 12; ++i) {
    t.cluster->populate_file("/base" + std::to_string(i), 512 * util::MiB, 3);
  }
  const auto hot = t.cluster->populate_file("/hot", 1 * util::GiB, 3);
  const sim::SimTime cycle_start = t.sim.now();
  t.cluster->change_replication(*hot, 8, hdfs::Cluster::IncreaseMode::kDirect, nullptr);
  t.sim.run();
  t.cluster->change_replication(*hot, 3, hdfs::Cluster::IncreaseMode::kDirect, nullptr);
  t.sim.run();
  const double cycle_s = (t.sim.now() - cycle_start).seconds();
  if (standby) {
    // Cool-down complete: ERMS powers the drained pool back down, so the
    // balancer sees only the active fleet (standby nodes are not balance
    // targets).
    standby->power_down_drained();
  }

  hdfs::Balancer::Config cfg;
  cfg.threshold = 0.05;
  hdfs::Balancer balancer{*t.cluster, cfg};
  hdfs::Balancer::Report report;
  balancer.run([&](const hdfs::Balancer::Report& r) { report = r; });
  t.sim.run();
  return CycleCost{cycle_s, report};
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation A9 — balancer work after a hot cycle (3 -> 8 -> 3)",
      "Algorithm 1 leaves the cluster balanced (deletions come off the "
      "standby pool); stock placement leaves skew the balancer must repair "
      "with time and bandwidth.");

  const CycleCost stock = run(false);
  const CycleCost erms = run(true);

  util::Table table({"policy", "cycle time (s)", "balancer moves",
                     "balancer bytes", "balancer time (s)"});
  table.add_row({"hdfs-default", util::Table::cell(stock.cycle_seconds, 1),
                 util::Table::cell(std::uint64_t{stock.balancer.moves}),
                 util::format_bytes(stock.balancer.bytes_moved),
                 util::Table::cell(stock.balancer.elapsed.seconds(), 1)});
  table.add_row({"erms-algorithm1", util::Table::cell(erms.cycle_seconds, 1),
                 util::Table::cell(std::uint64_t{erms.balancer.moves}),
                 util::format_bytes(erms.balancer.bytes_moved),
                 util::Table::cell(erms.balancer.elapsed.seconds(), 1)});
  bench::emit_table("abl_rebalance", table);
  std::printf("\nExpected shape: ERMS needs (near) zero balancer work.\n");
  return 0;
}
