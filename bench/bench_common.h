#pragma once

// Shared scaffolding for the figure-reproduction benches: the paper's
// testbed shape (1 namenode + 18 datanodes in 3 racks, GbE, SATA disks) and
// small printing helpers. Absolute numbers differ from the paper's hardware;
// the benches reproduce the *shapes* (who wins, by what factor, where the
// crossovers fall) and EXPERIMENTS.md records paper-vs-measured.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "core/erms.h"
#include "hdfs/cluster.h"
#include "util/table.h"

namespace erms::bench {

/// Process peak resident set size in bytes — the scale benches' headline
/// memory figure. Prefers /proc/self/status VmHWM (Linux, byte-exact high
/// water mark); falls back to getrusage ru_maxrss. Returns 0 if neither
/// source is available.
inline std::uint64_t peak_rss_bytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      std::istringstream fields(line.substr(6));
      std::uint64_t kib = 0;
      fields >> kib;
      if (kib > 0) {
        return kib * 1024;
      }
    }
  }
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
    return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB elsewhere
#endif
  }
#endif
  return 0;
}

/// The paper's datanode count and rack layout.
inline constexpr std::size_t kRacks = 3;
inline constexpr std::size_t kNodesPerRack = 6;
inline constexpr std::size_t kNodes = kRacks * kNodesPerRack;

struct Testbed {
  sim::Simulation sim;
  hdfs::Topology topo;
  std::unique_ptr<hdfs::Cluster> cluster;

  explicit Testbed(hdfs::ClusterConfig cfg = {}, hdfs::DataNodeConfig node_cfg = {}) {
    topo = hdfs::Topology::uniform(kRacks, kNodesPerRack, node_cfg);
    cluster = std::make_unique<hdfs::Cluster>(sim, topo, cfg);
  }

  /// The paper's Fig. 8/9 split — 10 active + 8 standby, with "the active
  /// nodes and standby nodes ... both distributed in different racks"
  /// (§III.B): each rack contributes its tail nodes to the pool.
  [[nodiscard]] std::vector<hdfs::NodeId> standby_pool() const {
    return {hdfs::NodeId{3},  hdfs::NodeId{4},  hdfs::NodeId{5},  hdfs::NodeId{9},
            hdfs::NodeId{10}, hdfs::NodeId{11}, hdfs::NodeId{16}, hdfs::NodeId{17}};
  }

  /// The 10 nodes outside the standby pool.
  [[nodiscard]] std::vector<hdfs::NodeId> active_set() const {
    std::vector<hdfs::NodeId> nodes;
    const auto pool = standby_pool();
    for (std::uint32_t n = 0; n < kNodes; ++n) {
      const hdfs::NodeId id{n};
      if (std::find(pool.begin(), pool.end(), id) == pool.end()) {
        nodes.push_back(id);
      }
    }
    return nodes;
  }

  [[nodiscard]] std::vector<hdfs::NodeId> active_nodes(std::size_t count) const {
    std::vector<hdfs::NodeId> nodes;
    for (std::uint32_t n = 0; n < count; ++n) {
      nodes.push_back(hdfs::NodeId{n});
    }
    return nodes;
  }
};

inline void print_header(const std::string& figure, const std::string& paper_claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", figure.c_str());
  std::printf("Paper: %s\n", paper_claim.c_str());
  std::printf("================================================================\n");
}

/// Print the table and, when ERMS_RESULTS_DIR is set, also write it as
/// <dir>/<name>.csv for plotting.
inline void emit_table(const std::string& name, const util::Table& table) {
  table.print(std::cout);
  const char* dir = std::getenv("ERMS_RESULTS_DIR");
  if (dir == nullptr || *dir == '\0') {
    return;
  }
  const std::string path = std::string(dir) + "/" + name + ".csv";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  table.print_csv(out);
  std::printf("(csv written to %s)\n", path.c_str());
}

}  // namespace erms::bench
