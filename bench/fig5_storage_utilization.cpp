// Fig. 5 — Storage space utilisation over the experiment.
//
// The paper tracks cluster storage during the trace replay: ERMS uses *more*
// storage than vanilla while data is hot (extra replicas), then *less* once
// cold files are Reed-Solomon encoded (replication 1 + 4 parities), without
// hurting reliability.
#include "bench_common.h"
#include "metrics/timeseries.h"
#include "workload/swim.h"

using namespace erms;
using bench::Testbed;

namespace {

metrics::TimeSeries run(bool with_erms, const workload::Trace& trace,
                        sim::SimDuration horizon) {
  Testbed t;
  std::unique_ptr<core::ErmsManager> erms;
  if (with_erms) {
    core::ErmsConfig cfg;
    cfg.thresholds.window = sim::minutes(5.0);
    cfg.thresholds.tau_M = 6.0;
    cfg.thresholds.tau_d = 1.5;
    // Files untouched for 40 min go cold — shortly after the trace's active
    // hour, so the figure shows both phases.
    cfg.thresholds.cold_age = sim::minutes(40.0);
    cfg.evaluation_period = sim::seconds(30.0);
    erms = std::make_unique<core::ErmsManager>(*t.cluster, t.standby_pool(), cfg);
    erms->start();
  }
  for (const workload::FileSpec& file : trace.files) {
    t.cluster->populate_file(file.path, file.bytes);
  }
  // Clients read whole files at the trace's submit times.
  for (const workload::JobSpec& job : trace.jobs) {
    t.sim.schedule_at(job.submit_time, [&t, path = job.input_path] {
      const hdfs::FileInfo* info = t.cluster->metadata().find_path(path);
      if (info != nullptr) {
        t.cluster->read_file(hdfs::NodeId{static_cast<std::uint32_t>(
                                 t.cluster->rng().uniform_int(0, 9))},
                             info->id, [](const hdfs::ReadOutcome&) {});
      }
    });
  }
  // Sample storage every 2 minutes.
  auto series = std::make_shared<metrics::TimeSeries>();
  for (sim::SimTime at{0}; at <= sim::SimTime{horizon.micros()};
       at = at + sim::minutes(2.0)) {
    t.sim.schedule_at(at, [&t, series] {
      series->record(t.sim.now(),
                     static_cast<double>(t.cluster->used_bytes_total()) / 1e9);
    });
  }
  t.sim.run_until(sim::SimTime{horizon.micros()});
  if (erms) {
    erms->stop();
  }
  return *series;
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 5 — Storage space utilisation (GB) during the trace",
      "ERMS > vanilla while data is hot (extra replicas); ERMS < vanilla "
      "after cold data is erasure-coded (rep 1 + 4 parities).");

  workload::SwimConfig swim;
  swim.file_count = 30;
  swim.duration = sim::hours(1.0);  // activity stops, then files go cold
  swim.epoch = sim::minutes(30.0);
  swim.mean_interarrival_s = 2.5;
  swim.zipf_exponent = 1.8;
  swim.min_file_bytes = 128 * util::MiB;
  swim.max_file_bytes = 2 * util::GiB;
  const workload::Trace trace = workload::SwimTraceGenerator{swim}.generate(55);

  const sim::SimDuration horizon = sim::hours(3.0);
  const metrics::TimeSeries vanilla = run(false, trace, horizon);
  const metrics::TimeSeries elastic = run(true, trace, horizon);

  util::Table table({"time (h)", "vanilla (GB)", "ERMS (GB)", "ERMS/vanilla"});
  for (const auto& point : vanilla.resampled(14)) {
    const double v = point.value;
    const double e = elastic.value_at(point.time);
    table.add_row({util::Table::cell(point.time.hours(), 2), util::Table::cell(v, 1),
                   util::Table::cell(e, 1), util::Table::cell(v > 0 ? e / v : 0.0, 3)});
  }
  bench::emit_table("fig5", table);

  const double peak_ratio =
      elastic.value_at(sim::SimTime{sim::minutes(30.0).micros()}) /
      vanilla.value_at(sim::SimTime{sim::minutes(30.0).micros()});
  const double final_ratio = elastic.points().back().value /
                             vanilla.points().back().value;
  std::printf("\nHot phase (t=0.5h): ERMS uses %.0f%% of vanilla storage (expected >100%%)\n",
              100.0 * peak_ratio);
  std::printf("Cold phase (t=%.1fh): ERMS uses %.0f%% of vanilla storage (expected <100%%)\n",
              horizon.seconds() / 3600.0, 100.0 * final_ratio);
  return 0;
}
