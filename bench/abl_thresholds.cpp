// Ablation A3 — the τ_M storage/performance trade-off.
//
// §IV.B: "It is a tradeoff between system performance and storage cost. We
// can get high performance with a high overhead cost if these thresholds
// are low." This bench sweeps τ_M over a hot workload and reports both
// sides of the trade.
#include "bench_common.h"
#include "mapred/jobrunner.h"
#include "workload/swim.h"

using namespace erms;
using bench::Testbed;

namespace {

struct TradeOff {
  double throughput_mbps;
  double locality;
  double peak_storage_gb;
  std::uint64_t promotions;
};

TradeOff run(double tau_M, const workload::Trace& trace) {
  Testbed t;
  core::ErmsConfig cfg;
  cfg.thresholds.window = sim::minutes(5.0);
  cfg.thresholds.tau_M = tau_M;
  cfg.thresholds.tau_d = tau_M / 4.0;
  cfg.thresholds.M_M = tau_M * 1.5;
  cfg.thresholds.M_m = tau_M * 0.75;
  cfg.thresholds.tau_DN = 60.0;
  cfg.evaluation_period = sim::seconds(30.0);
  core::ErmsManager erms{*t.cluster, std::vector<hdfs::NodeId>{}, cfg};
  erms.start();
  for (const workload::FileSpec& file : trace.files) {
    t.cluster->populate_file(file.path, file.bytes);
  }
  mapred::MapRedConfig mr;
  mr.compute_seconds_per_gib = 1.0;
  mapred::JobRunner runner{*t.cluster, mr};
  runner.submit_trace(trace);

  auto peak = std::make_shared<double>(0.0);
  for (int m = 0; m < 150; ++m) {
    t.sim.schedule_at(sim::SimTime{sim::minutes(m).micros()}, [&t, peak] {
      *peak = std::max(*peak, static_cast<double>(t.cluster->used_bytes_total()) / 1e9);
    });
  }
  t.sim.run_until(sim::SimTime{sim::hours(1.6).micros()});

  TradeOff out{};
  const auto rep = runner.report();
  out.throughput_mbps = rep.mean_read_throughput_mbps;
  out.locality = rep.mean_locality;
  out.peak_storage_gb = *peak;
  out.promotions = erms.stats().hot_promotions;
  erms.stop();
  return out;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation A3 — tau_M sweep: performance vs storage overhead",
      "Lower tau_M -> more replicas -> more throughput/locality at higher "
      "peak storage (the paper's stated trade-off).");

  workload::SwimConfig swim;
  swim.file_count = 24;
  swim.duration = sim::hours(1.0);
  swim.epoch = sim::minutes(30.0);
  swim.mean_interarrival_s = 1.5;
  swim.zipf_exponent = 1.8;
  swim.size_mu = 19.8;
  swim.min_file_bytes = 128 * util::MiB;
  swim.max_file_bytes = 2 * util::GiB;
  const workload::Trace trace = workload::SwimTraceGenerator{swim}.generate(99);

  util::Table table({"tau_M", "throughput (MB/s)", "locality", "peak storage (GB)",
                     "promotions"});
  for (const double tau : {16.0, 12.0, 8.0, 6.0, 4.0, 2.0}) {
    const TradeOff r = run(tau, trace);
    table.add_row({util::Table::cell(tau, 0), util::Table::cell(r.throughput_mbps),
                   util::Table::cell(r.locality, 3),
                   util::Table::cell(r.peak_storage_gb, 1),
                   util::Table::cell(r.promotions)});
  }
  bench::emit_table("abl_thresholds", table);
  return 0;
}
