// Fig. 9 — Reading throughput and average execution time at 70 concurrent
// readers (1 GB file), all-active vs active/standby, replicas 1..10.
//
// The paper's takeaway: higher replication factors lift throughput and cut
// execution time even at high concurrency, and the active/standby model
// beats keeping all nodes active because the extra replicas are served from
// unloaded standby nodes.
#include "fig89_common.h"
#include "mapred/testdfsio.h"

using namespace erms;
using bench::prepare_scenario;

namespace {

mapred::TestDfsIoResult measure(bool active_standby, std::uint32_t rep) {
  auto scenario = prepare_scenario(active_standby, rep);
  mapred::TestDfsIoOptions opts;
  opts.readers = 70;
  opts.busy_backoff = sim::millis(500);
  // Clients are spread over every serving node (the paper reads "directly
  // from HDFS" with distributed clients).
  return mapred::run_concurrent_read(*scenario.testbed->cluster, scenario.path, opts);
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 9 — 70 concurrent readers of a 1 GB file: throughput & exec time",
      "(a) throughput rises and (b) mean execution time falls with the "
      "replica count; Active/Standby beats All Active.");

  util::Table table({"replicas", "AA tput (MB/s)", "A/S tput (MB/s)", "AA exec (s)",
                     "A/S exec (s)"});
  for (std::uint32_t rep = 1; rep <= 10; ++rep) {
    const mapred::TestDfsIoResult aa = measure(false, rep);
    const mapred::TestDfsIoResult as = measure(true, rep);
    table.add_row({util::Table::cell(std::uint64_t{rep}),
                   util::Table::cell(aa.mean_reader_throughput_mbps, 1),
                   util::Table::cell(as.mean_reader_throughput_mbps, 1),
                   util::Table::cell(aa.mean_execution_s, 0),
                   util::Table::cell(as.mean_execution_s, 0)});
  }
  bench::emit_table("fig9", table);
  std::printf("\nExpected shape: throughput columns rise with replicas, execution "
              "columns fall, and A/S dominates AA at higher replica counts.\n");
  return 0;
}
