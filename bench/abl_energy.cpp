// Ablation A10 — the active/standby model's energy saving.
//
// §III.B: keeping all nodes active "causes increased energy consumption, a
// significant problem for data centers", and "after all data in a standby
// node are removed, ERMS could shut down that node for energy saving". We
// replay six hours with three hot bursts and compare the energy drawn by an
// all-active fleet against the active/standby fleet that commissions pool
// nodes only while hot data needs them.
#include "bench_common.h"

using namespace erms;
using bench::Testbed;

namespace {

struct EnergyResult {
  double energy_kwh;
  double reads_ok;
  double reads_rejected;
  std::uint64_t commissions;
};

EnergyResult run(bool active_standby) {
  Testbed t;
  core::ErmsConfig cfg;
  cfg.thresholds.window = sim::minutes(2.0);
  cfg.thresholds.tau_M = 6.0;
  cfg.evaluation_period = sim::seconds(20.0);
  cfg.manage_standby_power = true;
  // All-active: empty pool — every node stays powered regardless of load.
  std::vector<hdfs::NodeId> pool =
      active_standby ? t.standby_pool() : std::vector<hdfs::NodeId>{};
  core::ErmsManager erms{*t.cluster, pool, cfg};

  std::vector<hdfs::FileId> files;
  for (int i = 0; i < 10; ++i) {
    files.push_back(
        *t.cluster->populate_file("/data/f" + std::to_string(i), 512 * util::MiB, 3));
  }
  erms.start();

  // Three 20-minute bursts, two quiet hours apart, each hammering one file.
  for (int burst = 0; burst < 3; ++burst) {
    const double start_s = 1800.0 + burst * 7200.0;
    const std::size_t target = static_cast<std::size_t>(burst) % files.size();
    for (int i = 0; i < 1200; ++i) {
      const double at = start_s + i * 1.0;
      t.sim.schedule_at(sim::SimTime{static_cast<std::int64_t>(at * 1e6)},
                        [&t, &files, target, i] {
                          t.cluster->read_file(
                              hdfs::NodeId{static_cast<std::uint32_t>(i % 10)},
                              files[target], [](const hdfs::ReadOutcome&) {});
                        });
    }
  }
  t.sim.run_until(sim::SimTime{sim::hours(6.0).micros()});

  EnergyResult out{};
  out.energy_kwh = t.cluster->energy_joules_total() / 3.6e6;
  out.reads_ok = static_cast<double>(t.cluster->reads_completed());
  out.reads_rejected = static_cast<double>(t.cluster->reads_rejected());
  out.commissions = erms.standby().commissions();
  erms.stop();
  return out;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation A10 — energy: all-active vs active/standby over 6 bursty hours",
      "Standby nodes draw ~15 W instead of ~250 W while idle; ERMS "
      "commissions them only for hot bursts and powers them back down.");

  const EnergyResult all_active = run(false);
  const EnergyResult split = run(true);

  util::Table table({"fleet", "energy (kWh)", "reads served", "reads rejected",
                     "standby commissions"});
  table.add_row({"18 active", util::Table::cell(all_active.energy_kwh, 1),
                 util::Table::cell(all_active.reads_ok, 0),
                 util::Table::cell(all_active.reads_rejected, 0), "-"});
  table.add_row({"10 active + 8 standby", util::Table::cell(split.energy_kwh, 1),
                 util::Table::cell(split.reads_ok, 0),
                 util::Table::cell(split.reads_rejected, 0),
                 util::Table::cell(split.commissions)});
  bench::emit_table("abl_energy", table);
  std::printf("\nSaving: %.0f%% of fleet energy with comparable reads served.\n",
              100.0 * (1.0 - split.energy_kwh / all_active.energy_kwh));
  return 0;
}
