// Microbenchmark A7 — discrete-event engine and network-model rates. These
// bound how much simulated cluster activity a wall-clock second can cover,
// i.e. how big an experiment the harness can afford.
#include <benchmark/benchmark.h>

#include "net/network.h"
#include "obs/metrics_registry.h"
#include "sim/simulation.h"

namespace {

using erms::net::FabricSpec;
using erms::net::NetworkModel;
using erms::sim::Simulation;

void BM_ScheduleAndRun(benchmark::State& state) {
  for (auto _ : state) {
    Simulation sim;
    for (int i = 0; i < 10000; ++i) {
      sim.schedule_after(erms::sim::micros(i), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_ScheduleAndRun);

void BM_EventCancellation(benchmark::State& state) {
  for (auto _ : state) {
    Simulation sim;
    std::vector<erms::sim::EventHandle> handles;
    handles.reserve(10000);
    for (int i = 0; i < 10000; ++i) {
      handles.push_back(sim.schedule_after(erms::sim::micros(i), [] {}));
    }
    for (auto& h : handles) {
      h.cancel();
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventCancellation);

FabricSpec testbed_fabric() {
  FabricSpec spec;
  spec.rack_count = 3;
  for (int i = 0; i < 18; ++i) {
    FabricSpec::Node n;
    n.rack = static_cast<std::size_t>(i / 6);
    spec.nodes.push_back(n);
  }
  return spec;
}

void BM_NetworkFlows(benchmark::State& state) {
  const auto concurrency = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Simulation sim;
    NetworkModel net{sim, testbed_fabric()};
    std::size_t done = 0;
    for (std::size_t i = 0; i < concurrency; ++i) {
      net.start_flow(i % 18, (i + 7) % 18, 64 << 20, {},
                     [&done](erms::net::FlowId) { ++done; });
    }
    sim.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NetworkFlows)->Arg(16)->Arg(64)->Arg(256);

// Same flow mix with a metrics registry attached: the delta against
// BM_NetworkFlows is the observability overhead on the hottest sim path
// (EXPERIMENTS.md A6 records the measured gap).
void BM_NetworkFlowsObserved(benchmark::State& state) {
  const auto concurrency = static_cast<std::size_t>(state.range(0));
  erms::obs::MetricsRegistry registry;
  for (auto _ : state) {
    Simulation sim;
    NetworkModel net{sim, testbed_fabric()};
    net.set_metrics(&registry);
    std::size_t done = 0;
    for (std::size_t i = 0; i < concurrency; ++i) {
      net.start_flow(i % 18, (i + 7) % 18, 64 << 20, {},
                     [&done](erms::net::FlowId) { ++done; });
    }
    sim.run();
    net.set_metrics(nullptr);
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NetworkFlowsObserved)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
