#!/usr/bin/env python3
"""Fail if docs/EC_CODECS.md misses a registered erasure codec.

Parses the registry table (kCodecTable) in src/ec/codec_registry.cpp —
the single source of truth for codec names — and requires each name to
appear backticked in docs/EC_CODECS.md. Stdlib only, same spirit as
check_ops_docs.py: add a codec, document it in the same commit.
"""
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
REGISTRY = REPO / "src" / "ec" / "codec_registry.cpp"
DOC = REPO / "docs" / "EC_CODECS.md"


def registered_names():
    text = REGISTRY.read_text()
    m = re.search(r"kCodecTable\[\]\s*=\s*\{(.*?)\n\};", text, re.DOTALL)
    if not m:
        sys.exit(f"error: kCodecTable not found in {REGISTRY}")
    names = re.findall(r'\{\s*CodecKind::\w+\s*,\s*"([a-z0-9_]+)"\s*\}', m.group(1))
    if not names:
        sys.exit(f"error: no codec names parsed from kCodecTable in {REGISTRY}")
    return names


def main():
    if not DOC.exists():
        print(f"docs/EC_CODECS.md is missing entirely", file=sys.stderr)
        return 1
    documented = set(re.findall(r"`([^`]+)`", DOC.read_text()))
    names = registered_names()
    missing = [n for n in names if n not in documented]
    if missing:
        print(f"docs/EC_CODECS.md is missing {len(missing)} of {len(names)} "
              f"registered codec(s):", file=sys.stderr)
        for name in missing:
            print(f"  {name}", file=sys.stderr)
        return 1
    print(f"OK: all {len(names)} registered codecs are documented in docs/EC_CODECS.md")
    return 0


if __name__ == "__main__":
    sys.exit(main())
