#!/usr/bin/env python3
"""Determinism linter for ERMS's sim-deterministic code (DESIGN.md §15).

The simulator's contract is byte-identical replay: same seed, same config,
same trace — across runs, shard counts, batch sizes and platforms. The
chaos/scale differential suites enforce that dynamically; this linter bans
the constructs that break it statically, at the line where they appear:

  wall-clock       std::chrono::{system,steady,high_resolution}_clock,
                   time(nullptr), gettimeofday, clock(), localtime/gmtime —
                   sim code reads sim::Simulation::now(), never the host
                   clock.
  ambient-rng      std::rand/srand, std::random_device,
                   default_random_engine, default-constructed mt19937 —
                   randomness comes from an explicitly seeded sim::Rng so
                   a seed reproduces the run.
  unordered-drain  range-for over (or bulk-copy from) a std::unordered_map /
                   std::unordered_set — hash-order iteration feeding traces,
                   judge sweeps or recovery decisions makes the bucket
                   layout observable. Fix by draining through a sort, or
                   allowlist with `// erms-lint: ordered-drain — <reason>`.
  pointer-key      std::map/std::set keyed on a raw pointer — pointer order
                   is allocation order, which no two runs share.
  raw-mutex        std::mutex / std::lock_guard / std::unique_lock /
                   std::condition_variable outside util/mutex.h — raw types
                   carry no thread-safety capability, so Clang's analysis
                   (ERMS_STATIC_ANALYSIS=ON) is blind to them. Use
                   util::Mutex / util::LockGuard / util::CondVar.
  uninit-member    builtin-scalar member without an initializer in a struct
                   marked `// erms-lint: trace-struct` — partially-filled
                   events are exported as-is, so an uninitialized field
                   leaks indeterminate bytes into the trace diff.

Known violations live in a machine-readable baseline
(scripts/determinism_baseline.json) keyed by (file, rule, line text), each
with a mandatory human-written reason — pre-existing debt is burned down
explicitly, never hidden. The linter fails on: a violation not in the
baseline, a baseline entry without a reason, or a stale baseline entry
(fixed code must shrink the baseline in the same commit).

Stdlib only. If the optional libclang Python bindings are importable the
unordered-drain rule is cross-checked against the AST (catches aliases and
`auto` the regexes cannot see); without them the regex pass is the
authoritative — and CI-enforced — contract.

Usage:
  lint_determinism.py [paths...] [--baseline FILE] [--no-baseline]
                      [--write-baseline] [--list-rules]
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO / "scripts" / "determinism_baseline.json"

ALLOW_ORDERED_DRAIN = "erms-lint: ordered-drain"
TRACE_STRUCT_MARK = "erms-lint: trace-struct"

CPP_SUFFIXES = {".h", ".hpp", ".cc", ".cpp", ".cxx"}

# ---------------------------------------------------------------------------
# Simple line-based rules: (rule id, compiled regex, message).
# ---------------------------------------------------------------------------
WALL_CLOCK_RE = re.compile(
    r"\b(?:system_clock|steady_clock|high_resolution_clock)\b"
    r"|\bgettimeofday\s*\("
    r"|\bstd::time\s*\("
    r"|(?<![\w:.>])time\s*\(\s*(?:nullptr|NULL|0)\s*\)"
    r"|(?<![\w:.>])clock\s*\(\s*\)"
    r"|\b(?:localtime|gmtime)(?:_r)?\s*\("
)
AMBIENT_RNG_RE = re.compile(
    r"\bstd::rand\b"
    r"|(?<![\w:.>])s?rand\s*\(\s*\)"
    r"|\bsrand\s*\("
    r"|\brandom_device\b"
    r"|\bdefault_random_engine\b"
    r"|\bmt19937(?:_64)?\s+\w+\s*(?:;|\{\s*\})"
)
POINTER_KEY_RE = re.compile(r"\bstd::(?:map|set)\s*<[^,<>]*\*\s*[,>]")
RAW_MUTEX_RE = re.compile(
    r"\bstd::(?:mutex|recursive_mutex|timed_mutex|shared_mutex|lock_guard|"
    r"unique_lock|scoped_lock|condition_variable(?:_any)?)\b"
)

UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;{]*>\s*"
    r"(?:&\s*)?(\w+)\s*[;={(]"
)
ORDERED_DECL_RE = re.compile(
    r"\bstd::(?:vector|map|set|multimap|multiset|deque|array|list)\s*"
    r"<[^;{]*>\s*(?:&\s*)?(\w+)\s*[;={(]"
)
STRUCT_OPEN_RE = re.compile(r"\b(?:struct|class)\s+(\w+)[^;{]*\{")
VAR_DECL_RE = re.compile(
    r"(?:const\s+)?([A-Z]\w*)\s*(?:[*&]\s*)*(\w+)\s*(?:[=;({]|\s*:)"
)
QUOTED_INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"', re.M)
RANGE_FOR_RE = re.compile(r"\bfor\s*\(\s*[^;)]*?:\s*([\w>\-.()*]+?)\s*\)")
BULK_COPY_RE = re.compile(r"\(\s*([\w>\-.]+)\.begin\(\)\s*,\s*([\w>\-.]+)\.end\(\)\s*\)")
SORT_NEARBY_RE = re.compile(r"\b(?:std::)?(?:sort|stable_sort)\s*\(")

SCALAR_MEMBER_RE = re.compile(
    r"^\s*(?:const\s+)?"
    r"((?:unsigned\s+|signed\s+|long\s+|short\s+)*"
    r"(?:bool|char|short|int|long|float|double|size_t|std::size_t|"
    r"std::ptrdiff_t|(?:std::)?u?int(?:8|16|32|64)_t)|[\w:]+\s*\*)\s+"
    r"(\w+)\s*;\s*(?://.*)?$"
)

RULES_DOC = {
    "wall-clock": "host-clock read in sim-deterministic code",
    "ambient-rng": "ambient / unseeded randomness",
    "unordered-drain": "hash-order iteration over an unordered container",
    "pointer-key": "ordered container keyed on a raw pointer",
    "raw-mutex": "raw std::mutex family instead of annotated util::Mutex",
    "uninit-member": "uninitialized scalar member in a trace-carried struct",
}


class Violation:
    def __init__(self, file: str, line_no: int, rule: str, line_text: str, msg: str):
        self.file = file
        self.line_no = line_no
        self.rule = rule
        # Whitespace-normalized so the baseline survives reindents and
        # line-number drift.
        self.line_text = " ".join(line_text.split())
        self.msg = msg

    def key(self):
        return (self.file, self.rule, self.line_text)

    def __str__(self):
        return f"{self.file}:{self.line_no}: [{self.rule}] {self.msg}"


def strip_comments_and_strings(line: str) -> str:
    """Blank out string/char literals and // comments (keeps length)."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and line[i] != quote:
                out.append(" ")
                i += 2 if line[i] == "\\" else 1
            if i < n:
                out.append(quote)
                i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def allowlisted(lines: list[str], idx: int) -> bool:
    """An ordered-drain waiver covers its own line or the 1-2 lines above,
    and must carry a justification after the marker."""
    for j in (idx, idx - 1, idx - 2):
        if 0 <= j < len(lines) and ALLOW_ORDERED_DRAIN in lines[j]:
            after = lines[j].split(ALLOW_ORDERED_DRAIN, 1)[1]
            return len(after.strip(" -—:.")) >= 8  # demand an actual reason
    return False


_text_cache: dict[Path, str] = {}


def read_cached(path: Path) -> str:
    if path not in _text_cache:
        _text_cache[path] = path.read_text(errors="replace")
    return _text_cache[path]


def transitive_texts(path: Path) -> list[str]:
    """The file, its paired header, and every project-local quoted include
    reachable from it (resolved against the repo's src/ roots). This is the
    name-resolution scope for the unordered-drain rule: member containers
    are declared in headers, drained in .cpp files."""
    include_roots = [REPO / "src", REPO, path.parent]
    seen: set[Path] = set()
    queue = [path]
    if path.suffix in {".cc", ".cpp", ".cxx"}:
        for suffix in (".h", ".hpp"):
            header = path.with_suffix(suffix)
            if header.exists():
                queue.append(header)
    texts: list[str] = []
    while queue:
        cur = queue.pop()
        if cur in seen or not cur.exists():
            continue
        seen.add(cur)
        text = read_cached(cur)
        texts.append(text)
        for inc in QUOTED_INCLUDE_RE.findall(text):
            for root in include_roots:
                cand = (root / inc).resolve()
                if cand.exists():
                    queue.append(cand)
                    break
    return texts


def struct_members(texts: list[str]) -> dict[tuple[str, str], str]:
    """(StructName, member) -> 'unordered' | 'ordered' for container members
    declared directly inside struct/class bodies in `texts`."""
    out: dict[tuple[str, str], str] = {}
    for text in texts:
        clean = "\n".join(strip_comments_and_strings(l) for l in text.splitlines())
        for m in STRUCT_OPEN_RE.finditer(clean):
            depth, i = 1, m.end()
            while i < len(clean) and depth:
                if clean[i] == "{":
                    depth += 1
                elif clean[i] == "}":
                    depth -= 1
                i += 1
            body = clean[m.end() : i]
            for dm in UNORDERED_DECL_RE.finditer(body):
                out[(m.group(1), dm.group(1))] = "unordered"
            for dm in ORDERED_DECL_RE.finditer(body):
                out.setdefault((m.group(1), dm.group(1)), "ordered")
    return out


def local_var_types(clean_lines: list[str]) -> dict[str, str]:
    """Best-effort `name -> TypeName` for locals/params declared with a
    project type (capitalized identifier). Last declaration wins."""
    out: dict[str, str] = {}
    for line in clean_lines:
        for m in VAR_DECL_RE.finditer(line):
            if m.group(1) not in {"Returns", "The"}:
                out[m.group(2)] = m.group(1)
    return out


def base_identifier(expr: str) -> str:
    """Last identifier segment of `a.b`, `a->b`, `(*a).b`, `a`."""
    expr = expr.rstrip(")")
    for sep in ("->", "."):
        if sep in expr:
            expr = expr.rsplit(sep, 1)[1]
    return expr.strip("&*() ")


def first_identifier(expr: str) -> str:
    m = re.match(r"[&*( ]*(\w+)", expr)
    return m.group(1) if m else ""


class DrainScope:
    """Name-resolution context for one translation unit."""

    def __init__(self, path: Path, clean_lines: list[str]):
        texts = transitive_texts(path)
        self.members = struct_members(texts)
        self.unordered_names: set[str] = set()
        self.ordered_names: set[str] = set()
        for text in texts:
            self.unordered_names |= set(UNORDERED_DECL_RE.findall(text))
            self.ordered_names |= set(ORDERED_DECL_RE.findall(text))
        self.var_types = local_var_types(clean_lines)

    def classify(self, expr: str) -> str:
        """'unordered' | 'ordered' | 'unknown' for a range-for expression.
        Unknown (including a name declared both ways with no resolvable
        type) is skipped — false positives would train people to sprinkle
        waivers; the AST cross-check catches what this under-reports."""
        if "(" in expr.rstrip(")"):
            return "unknown"  # function call result — type not resolvable
        member = base_identifier(expr)
        if ("->" in expr or "." in expr) and member:
            var_type = self.var_types.get(first_identifier(expr))
            if var_type and (var_type, member) in self.members:
                return self.members[(var_type, member)]
            classes = {
                cls for (_, mem), cls in self.members.items() if mem == member
            }
            if len(classes) == 1:
                return classes.pop()
            if classes:
                return "unknown"
        if member in self.unordered_names:
            return "unknown" if member in self.ordered_names else "unordered"
        return "unknown"


def lint_file(path: Path, repo_rel: str) -> list[Violation]:
    text = read_cached(path)
    lines = text.splitlines()
    clean = [strip_comments_and_strings(l) for l in lines]
    scope = DrainScope(path, clean)

    is_mutex_wrapper = repo_rel.replace("\\", "/").endswith("util/mutex.h")
    out: list[Violation] = []

    # --- trace-struct member initialization ---------------------------------
    trace_struct_depth = None
    depth = 0
    pending_mark = False
    for idx, raw in enumerate(lines):
        code = clean[idx]
        if TRACE_STRUCT_MARK in raw:
            pending_mark = True
        opens, closes = code.count("{"), code.count("}")
        if pending_mark and re.search(r"\b(?:struct|class)\s+\w+", code):
            if opens:
                trace_struct_depth = depth + 1
                pending_mark = False
            # else: marker seen, struct brace on a later line — handled below.
        elif pending_mark and opens and trace_struct_depth is None:
            trace_struct_depth = depth + 1
            pending_mark = False
        if trace_struct_depth is not None and depth == trace_struct_depth:
            m = SCALAR_MEMBER_RE.match(code)
            if m:
                out.append(
                    Violation(
                        repo_rel, idx + 1, "uninit-member", raw,
                        f"member '{m.group(2)}' of a trace-carried struct has no "
                        "initializer; an unset field would export indeterminate "
                        "bytes into the trace",
                    )
                )
        depth += opens - closes
        if trace_struct_depth is not None and depth < trace_struct_depth:
            trace_struct_depth = None

    # --- line rules ---------------------------------------------------------
    for idx, raw in enumerate(lines):
        code = clean[idx]
        if not code.strip():
            continue

        if WALL_CLOCK_RE.search(code):
            out.append(
                Violation(
                    repo_rel, idx + 1, "wall-clock", raw,
                    "host-clock read in sim-deterministic code; use "
                    "sim::Simulation::now()",
                )
            )
        if AMBIENT_RNG_RE.search(code):
            out.append(
                Violation(
                    repo_rel, idx + 1, "ambient-rng", raw,
                    "ambient/unseeded randomness; draw from an explicitly "
                    "seeded sim::Rng",
                )
            )
        if POINTER_KEY_RE.search(code):
            out.append(
                Violation(
                    repo_rel, idx + 1, "pointer-key", raw,
                    "container ordered by raw pointer value; pointer order is "
                    "allocation order, which no two runs share",
                )
            )
        if not is_mutex_wrapper and RAW_MUTEX_RE.search(code):
            out.append(
                Violation(
                    repo_rel, idx + 1, "raw-mutex", raw,
                    "raw std::mutex family is invisible to thread-safety "
                    "analysis; use util::Mutex / util::LockGuard / "
                    "util::CondVar (util/mutex.h)",
                )
            )

        for m in RANGE_FOR_RE.finditer(code):
            if scope.classify(m.group(1)) == "unordered" and not allowlisted(lines, idx):
                out.append(
                    Violation(
                        repo_rel, idx + 1, "unordered-drain", raw,
                        f"range-for over unordered container "
                        f"'{base_identifier(m.group(1))}' drains in hash order; "
                        "sort the drain or justify with "
                        f"'// {ALLOW_ORDERED_DRAIN} — <reason>'",
                    )
                )
        for m in BULK_COPY_RE.finditer(code):
            base = base_identifier(m.group(1))
            if (base != base_identifier(m.group(2))
                    or scope.classify(m.group(1)) != "unordered"):
                continue
            lookahead = " ".join(clean[idx + 1 : idx + 4])
            if SORT_NEARBY_RE.search(lookahead) or SORT_NEARBY_RE.search(code):
                continue  # drained through an explicit sort — ordered
            if not allowlisted(lines, idx):
                out.append(
                    Violation(
                        repo_rel, idx + 1, "unordered-drain", raw,
                        f"bulk copy of unordered container '{base}' without a "
                        "sort; hash order becomes element order",
                    )
                )
    return out


# ---------------------------------------------------------------------------
# Optional libclang cross-check (adds AST-confirmed unordered drains that the
# regexes miss — aliases, autos, members brought in via using-decls).
# ---------------------------------------------------------------------------
def libclang_pass(paths: list[Path]) -> list[Violation]:
    try:
        from clang import cindex  # type: ignore
    except Exception:
        return []
    out: list[Violation] = []
    try:
        index = cindex.Index.create()
        for path in paths:
            if path.suffix not in {".cc", ".cpp", ".cxx"}:
                continue
            tu = index.parse(
                str(path), args=["-std=c++20", f"-I{REPO / 'src'}"],
                options=cindex.TranslationUnit.PARSE_SKIP_FUNCTION_BODIES * 0,
            )
            for cur in tu.cursor.walk_preorder():
                if cur.kind != cindex.CursorKind.CXX_FOR_RANGE_STMT:
                    continue
                if not cur.location.file or Path(str(cur.location.file)) != path:
                    continue
                children = list(cur.get_children())
                if not children:
                    continue
                range_type = children[0].type.spelling
                if "unordered_" in range_type:
                    rel = str(path.relative_to(REPO))
                    lines = path.read_text(errors="replace").splitlines()
                    ln = cur.location.line
                    if not allowlisted(lines, ln - 1):
                        out.append(
                            Violation(
                                rel, ln, "unordered-drain",
                                lines[ln - 1] if ln <= len(lines) else "",
                                f"AST: range-for over '{range_type}'",
                            )
                        )
    except Exception:
        return []  # the regex pass remains authoritative
    return out


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------
def load_baseline(path: Path):
    if not path.exists():
        return []
    with open(path) as f:
        data = json.load(f)
    entries = data.get("entries", [])
    for e in entries:
        # Same whitespace normalization Violation applies, so hand-edited
        # baselines match regardless of indentation.
        e["line_text"] = " ".join(e.get("line_text", "").split())
    return entries


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*", default=None, help="files or directories (default: src/)")
    ap.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    ap.add_argument("--no-baseline", action="store_true",
                    help="every violation fails, baseline ignored (CI new-file gate)")
    ap.add_argument("--write-baseline", action="store_true",
                    help="emit current violations as baseline entries (reasons left "
                         "empty — the linter refuses empty reasons, fill them in)")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args()

    if args.list_rules:
        for rule, doc in RULES_DOC.items():
            print(f"{rule:17s} {doc}")
        return 0

    roots = [Path(p) for p in (args.paths or [REPO / "src"])]
    files: list[Path] = []
    for root in roots:
        root = root.resolve()
        if root.is_dir():
            files.extend(
                p for p in sorted(root.rglob("*")) if p.suffix in CPP_SUFFIXES
            )
        elif root.exists():
            files.append(root)
        else:
            print(f"error: no such path: {root}", file=sys.stderr)
            return 2

    violations: list[Violation] = []
    for f in files:
        try:
            rel = str(f.relative_to(REPO))
        except ValueError:
            rel = str(f)
        violations.extend(lint_file(f, rel))

    seen = {v.key() for v in violations}
    for v in libclang_pass(files):
        if v.key() not in seen:
            violations.append(v)
            seen.add(v.key())

    if args.write_baseline:
        entries = [
            {"file": v.file, "rule": v.rule, "line_text": v.line_text, "reason": ""}
            for v in violations
        ]
        args.baseline.write_text(
            json.dumps({"version": 1, "entries": entries}, indent=2) + "\n"
        )
        print(f"wrote {len(entries)} baseline entries to {args.baseline} "
              "(fill in every 'reason' or fix the code)")
        return 0

    baseline = [] if args.no_baseline else load_baseline(args.baseline)
    baseline_keys = {(e["file"], e["rule"], e["line_text"]): e for e in baseline}

    failures = 0
    matched_baseline = set()
    for v in violations:
        entry = baseline_keys.get(v.key())
        if entry is not None:
            matched_baseline.add(v.key())
            if not entry.get("reason", "").strip():
                print(f"{v}  [baselined WITHOUT a reason — explain or fix]")
                failures += 1
            continue
        print(v)
        failures += 1

    for key, entry in baseline_keys.items():
        if key not in matched_baseline:
            print(f"{entry['file']}: [stale-baseline] entry for rule "
                  f"'{entry['rule']}' no longer matches any code — remove it "
                  f"from {args.baseline.name}")
            failures += 1

    if failures:
        print(f"\n{failures} determinism-lint failure(s) across "
              f"{len(files)} file(s).", file=sys.stderr)
        return 1
    print(f"determinism lint clean: {len(files)} file(s), "
          f"{len(baseline)} baselined violation(s) remaining.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
