#!/usr/bin/env python3
"""Fail if docs/OPERATIONS.md misses a config field or env knob.

Checks, against the actual source tree:
  * every field of core::ErmsConfig        (src/core/erms.h)
  * every field of judge::Thresholds       (src/judge/thresholds.h)
  * every field of AccessPredictor::Config (src/judge/predictor.h)
  * every ERMS_* environment variable referenced anywhere in
    src/, bench/, examples/ or tests/

Each must appear in docs/OPERATIONS.md as `name` (backticked). Stdlib
only; the struct parser is deliberately dumb — it scans the brace-balanced
struct body for `type name = default;` / `type name;` member lines, which
is all these aggregate config structs contain.
"""
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
OPS = REPO / "docs" / "OPERATIONS.md"

MEMBER_RE = re.compile(
    r"^\s*(?:const\s+)?[A-Za-z_][\w:<>,\s]*?[&\s]([a-z_][a-z0-9_]*)\s*(?:=[^;]+)?;\s*$"
)


def struct_body(text, struct_name, path):
    m = re.search(rf"struct\s+{struct_name}\s*\{{", text)
    if not m:
        sys.exit(f"error: struct {struct_name} not found in {path}")
    depth, start = 1, m.end()
    pos = start
    while depth > 0:
        if pos >= len(text):
            sys.exit(f"error: unbalanced braces for {struct_name} in {path}")
        if text[pos] == "{":
            depth += 1
        elif text[pos] == "}":
            depth -= 1
        pos += 1
    return text[start : pos - 1]


def fields_of(header, struct_name):
    body = struct_body(header.read_text(), struct_name, header)
    # Strip comments and nested braces (method bodies like valid()).
    body = re.sub(r"//[^\n]*", "", body)
    flat, depth = [], 0
    for ch in body:
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
        elif depth == 0:
            flat.append(ch)
    names = []
    for line in "".join(flat).splitlines():
        if "(" in line or ")" in line:  # methods/constructors, not members
            continue
        m = MEMBER_RE.match(line)
        if m:
            names.append(m.group(1))
    if not names:
        sys.exit(f"error: no members parsed for {struct_name} in {header}")
    return names


def env_knobs():
    knobs = set()
    for sub in ("src", "bench", "examples", "tests"):
        for path in (REPO / sub).rglob("*"):
            if path.suffix in (".h", ".cpp", ".cc"):
                knobs.update(re.findall(r'"(ERMS_[A-Z_]+)"', path.read_text()))
    return sorted(knobs)


def main():
    ops = OPS.read_text()
    documented = set(re.findall(r"`([^`]+)`", ops))

    required = {
        "ErmsConfig": fields_of(REPO / "src/core/erms.h", "ErmsConfig"),
        "judge::Thresholds": fields_of(REPO / "src/judge/thresholds.h", "Thresholds"),
        "AccessPredictor::Config": fields_of(REPO / "src/judge/predictor.h", "Config"),
        "environment": env_knobs(),
    }

    missing = []
    for group, names in required.items():
        for name in names:
            if name not in documented:
                missing.append(f"{group}: {name}")

    total = sum(len(v) for v in required.values())
    if missing:
        print(f"docs/OPERATIONS.md is missing {len(missing)} of {total} item(s):",
              file=sys.stderr)
        for item in missing:
            print(f"  {item}", file=sys.stderr)
        return 1
    print(f"OK: all {total} config fields and env knobs are documented "
          f"in docs/OPERATIONS.md")
    return 0


if __name__ == "__main__":
    sys.exit(main())
