#!/usr/bin/env python3
"""Validate an exported ERMS action trace against docs/trace_schema.json.

Usage: check_trace_schema.py TRACE.jsonl [SCHEMA.json]

Stdlib-only (no jsonschema dependency): implements exactly the subset of
JSON Schema the checked-in schema uses — required, additionalProperties,
type, enum, minimum/maximum, array items/minItems — plus one trace-level
invariant the schema language can't express: seq strictly increases across
the file. (t_us is NOT required to be monotone: one bundle may observe
several consecutive simulations — fig7 does — and sim time restarts at 0
for each.)
"""
import json
import sys
from pathlib import Path

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
}


def check(value, schema, where, errors):
    typ = schema.get("type")
    if typ is not None:
        expected = TYPES[typ]
        ok = isinstance(value, expected) and not (
            typ in ("integer", "number") and isinstance(value, bool)
        )
        if not ok:
            errors.append(f"{where}: expected {typ}, got {value!r}")
            return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{where}: {value!r} not in {schema['enum']}")
    if "minimum" in schema and value < schema["minimum"]:
        errors.append(f"{where}: {value} < minimum {schema['minimum']}")
    if "maximum" in schema and value > schema["maximum"]:
        errors.append(f"{where}: {value} > maximum {schema['maximum']}")
    if typ == "object":
        props = schema.get("properties", {})
        for name in schema.get("required", []):
            if name not in value:
                errors.append(f"{where}: missing required field {name!r}")
        if schema.get("additionalProperties") is False:
            for name in value:
                if name not in props:
                    errors.append(f"{where}: unknown field {name!r}")
        for name, sub in props.items():
            if name in value:
                check(value[name], sub, f"{where}.{name}", errors)
    if typ == "array":
        if "minItems" in schema and len(value) < schema["minItems"]:
            errors.append(f"{where}: fewer than {schema['minItems']} items")
        items = schema.get("items")
        if items:
            for i, item in enumerate(value):
                check(item, items, f"{where}[{i}]", errors)


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    trace_path = Path(argv[1])
    schema_path = (
        Path(argv[2])
        if len(argv) == 3
        else Path(__file__).resolve().parent.parent / "docs" / "trace_schema.json"
    )
    schema = json.loads(schema_path.read_text())

    errors = []
    events = 0
    prev_seq = 0
    for lineno, line in enumerate(trace_path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        where = f"{trace_path}:{lineno}"
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"{where}: not valid JSON: {exc}")
            continue
        events += 1
        check(event, schema, where, errors)
        seq = event.get("seq")
        if isinstance(seq, int):
            if seq <= prev_seq:
                errors.append(f"{where}: seq {seq} not greater than previous {prev_seq}")
            prev_seq = seq

    if events == 0:
        errors.append(f"{trace_path}: no events")
    for err in errors[:50]:
        print(err, file=sys.stderr)
    if errors:
        print(f"FAIL: {len(errors)} error(s) across {events} event(s)", file=sys.stderr)
        return 1
    print(f"OK: {events} trace event(s) conform to {schema_path.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
