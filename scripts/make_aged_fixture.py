#!/usr/bin/env python3
"""Regenerate tests/fixtures/aged_cluster.snap.

The fixture is a snapshot of a small cluster with some history behind it
(reads served, a crash healed by re-replication, the file cooled into
erasure coding). Chaos tests restore it so they start from aged state
rather than a freshly populated world.

Run after any change to a serialized component's on-disk format:

    ./scripts/make_aged_fixture.py [--build-dir build]

The script builds the `make_aged_fixture` example and runs it. Commit the
regenerated fixture together with the format change (and a
snapshot::kFormatVersion bump if the change is incompatible).
"""

from __future__ import annotations

import argparse
import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
FIXTURE = REPO / "tests" / "fixtures" / "aged_cluster.snap"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build", help="CMake build directory")
    args = parser.parse_args()

    build_dir = REPO / args.build_dir
    if not (build_dir / "CMakeCache.txt").exists():
        print(f"error: {build_dir} is not a configured build directory", file=sys.stderr)
        print("hint: cmake -S . -B build first", file=sys.stderr)
        return 1

    subprocess.run(
        ["cmake", "--build", str(build_dir), "--target", "make_aged_fixture"],
        check=True,
    )
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    subprocess.run(
        [str(build_dir / "examples" / "make_aged_fixture"), str(FIXTURE)],
        check=True,
    )
    print(f"wrote {FIXTURE} ({FIXTURE.stat().st_size} bytes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
